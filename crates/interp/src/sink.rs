//! Trace sinks: where emitted records go.

use crate::error::ExecError;
use autocheck_trace::{AnalysisCtx, BinaryWriter, Record, TraceWriter};
use std::io::Write;

/// Consumer of emitted trace records.
pub trait TraceSink {
    /// Receive one record.
    fn record(&mut self, rec: Record) -> Result<(), ExecError>;

    /// True when the sink wants records at all. The interpreter skips record
    /// *construction* entirely when this is false, so untraced runs (the
    /// checkpoint-validation executions) pay nothing.
    fn enabled(&self) -> bool {
        true
    }
}

/// Discards everything; `enabled()` is false so emission is skipped.
#[derive(Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _rec: Record) -> Result<(), ExecError> {
        Ok(())
    }

    fn enabled(&self) -> bool {
        false
    }
}

/// Collects records in memory — used by tests and the in-process pipeline.
#[derive(Default)]
pub struct VecSink {
    /// The collected records.
    pub records: Vec<Record>,
}

impl TraceSink for VecSink {
    fn record(&mut self, rec: Record) -> Result<(), ExecError> {
        self.records.push(rec);
        Ok(())
    }
}

/// Counts records without keeping them.
#[derive(Default)]
pub struct CountSink {
    /// Number of records seen.
    pub count: u64,
}

impl TraceSink for CountSink {
    fn record(&mut self, _rec: Record) -> Result<(), ExecError> {
        self.count += 1;
        Ok(())
    }
}

/// Push-based adapter: forwards every record to a closure. This is the
/// interpreter→analyzer direct path — a streaming analysis session can sit
/// on the other side of the closure, so a program is traced and analyzed
/// with **no intermediate trace file or record buffer at all**.
///
/// ```ignore
/// let mut session = analyzer.session();
/// let mut sink = FnSink::new(|rec| {
///     session.push(&rec).map_err(|e| ExecError::Sink { message: e.to_string() })
/// });
/// machine.run(&mut sink, &mut NoHook)?;
/// let report = session.finish();
/// ```
pub struct FnSink<F: FnMut(Record) -> Result<(), ExecError>> {
    f: F,
}

impl<F: FnMut(Record) -> Result<(), ExecError>> FnSink<F> {
    /// Wrap `f`.
    pub fn new(f: F) -> FnSink<F> {
        FnSink { f }
    }
}

impl<F: FnMut(Record) -> Result<(), ExecError>> TraceSink for FnSink<F> {
    fn record(&mut self, rec: Record) -> Result<(), ExecError> {
        (self.f)(rec)
    }
}

/// Streams the textual trace format into any [`Write`] — the equivalent of
/// LLVM-Tracer's trace file.
pub struct WriterSink<W: Write> {
    writer: TraceWriter<W>,
}

impl<W: Write> WriterSink<W> {
    /// Wrap `out`.
    pub fn new(out: W) -> Self {
        WriterSink {
            writer: TraceWriter::new(out),
        }
    }

    /// Bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.writer.bytes_written()
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.writer.records_written()
    }

    /// Flush and recover the inner writer.
    pub fn finish(self) -> Result<W, ExecError> {
        self.writer.finish().map_err(|e| ExecError::Sink {
            message: e.to_string(),
        })
    }
}

impl<W: Write> TraceSink for WriterSink<W> {
    fn record(&mut self, rec: Record) -> Result<(), ExecError> {
        self.writer.write_record(&rec).map_err(|e| ExecError::Sink {
            message: e.to_string(),
        })
    }
}

/// Streams the **binary** trace format into any [`Write`] — the compact
/// counterpart of [`WriterSink`]. Records and the symbol string table are
/// buffered and emitted on [`finish`](Self::finish) (the header carries the
/// record count and string table, so the format cannot be written
/// incrementally).
pub struct BinarySink<W: Write> {
    writer: BinaryWriter<W>,
}

impl<W: Write> BinarySink<W> {
    /// Wrap `out`, resolving symbols via the thread-current session.
    pub fn new(out: W) -> Self {
        BinarySink {
            writer: BinaryWriter::new(out),
        }
    }

    /// Wrap `out`, resolving symbols via `ctx`'s session.
    pub fn with_ctx(out: W, ctx: &AnalysisCtx) -> Self {
        BinarySink {
            writer: BinaryWriter::with_ctx(out, ctx),
        }
    }

    /// Records accepted so far (buffered; nothing is on the wire yet).
    pub fn records_written(&self) -> u64 {
        self.writer.records_written()
    }

    /// Bytes the finished trace will occupy (header + string table so far +
    /// records).
    pub fn bytes_written(&self) -> u64 {
        self.writer.bytes_written()
    }

    /// Emit header, string table and records, then recover the inner writer.
    pub fn finish(self) -> Result<W, ExecError> {
        self.writer.finish().map_err(|e| ExecError::Sink {
            message: e.to_string(),
        })
    }
}

impl<W: Write> TraceSink for BinarySink<W> {
    fn record(&mut self, rec: Record) -> Result<(), ExecError> {
        self.writer.write_record(&rec).map_err(|e| ExecError::Sink {
            message: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocheck_trace::SymId;

    fn rec(id: u64) -> Record {
        Record {
            src_line: 1,
            func: SymId::intern("main"),
            bb: (1, 1),
            bb_label: SymId::intern("0"),
            opcode: 2,
            dyn_id: id,
            operands: vec![],
            result: None,
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        let s = NullSink;
        assert!(!s.enabled());
    }

    #[test]
    fn vec_sink_collects() {
        let mut s = VecSink::default();
        s.record(rec(0)).unwrap();
        s.record(rec(1)).unwrap();
        assert_eq!(s.records.len(), 2);
        assert!(s.enabled());
    }

    #[test]
    fn count_sink_counts() {
        let mut s = CountSink::default();
        for i in 0..5 {
            s.record(rec(i)).unwrap();
        }
        assert_eq!(s.count, 5);
    }

    #[test]
    fn fn_sink_forwards_records_and_errors() {
        let mut ids = Vec::new();
        let mut s = FnSink::new(|r: Record| {
            if r.dyn_id >= 2 {
                return Err(ExecError::Sink {
                    message: "full".into(),
                });
            }
            ids.push(r.dyn_id);
            Ok(())
        });
        s.record(rec(0)).unwrap();
        s.record(rec(1)).unwrap();
        assert!(s.record(rec(2)).is_err());
        assert_eq!(ids, vec![0, 1]);
        assert!(FnSink::new(|_| Ok(())).enabled());
    }

    #[test]
    fn binary_sink_produces_parsable_binary() {
        let mut s = BinarySink::new(Vec::new());
        s.record(rec(0)).unwrap();
        s.record(rec(1)).unwrap();
        assert_eq!(s.records_written(), 2);
        let bytes = s.finish().unwrap();
        assert!(autocheck_trace::binary::is_binary(&bytes));
        let parsed = autocheck_trace::TraceSource::from_bytes(&bytes)
            .records()
            .unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].dyn_id, 1);
    }

    #[test]
    fn binary_and_writer_sinks_agree_on_records() {
        let mut text = WriterSink::new(Vec::new());
        let mut bin = BinarySink::new(Vec::new());
        for i in 0..4 {
            text.record(rec(i)).unwrap();
            bin.record(rec(i)).unwrap();
        }
        let from_text = autocheck_trace::TraceSource::from_bytes(&text.finish().unwrap())
            .records()
            .unwrap();
        let from_bin = autocheck_trace::TraceSource::from_bytes(&bin.finish().unwrap())
            .records()
            .unwrap();
        assert_eq!(from_text, from_bin);
    }

    #[test]
    fn writer_sink_produces_parsable_text() {
        let mut s = WriterSink::new(Vec::new());
        s.record(rec(0)).unwrap();
        s.record(rec(1)).unwrap();
        assert_eq!(s.records_written(), 2);
        let bytes = s.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let parsed = autocheck_trace::TraceSource::from_str(&text)
            .records()
            .unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].dyn_id, 1);
    }
}
