//! The interpreter's concrete memory: globals segment + stack segment.
//!
//! Addresses are real (deterministic) numeric values so that the emitted
//! traces carry meaningful pointers, exactly like LLVM-Tracer's output. The
//! layout is fixed:
//!
//! * globals live at [`GLOBAL_BASE`], laid out at module load, 8-byte
//!   aligned;
//! * stack frames live at [`STACK_BASE`], growing upward through a bump
//!   allocator that resets to the frame base on return.
//!
//! Determinism matters twice: it makes traces reproducible run-to-run, and
//! it lets the BLCR-style whole-image checkpointer restore a dump into a
//! fresh interpreter (same allocation order ⇒ same addresses).

use crate::error::ExecError;
use autocheck_ir::Type;
use std::collections::HashMap;

/// Base address of the globals segment.
pub const GLOBAL_BASE: u64 = 0x0100_0000;
/// Base address of the stack segment.
pub const STACK_BASE: u64 = 0x7f00_0000_0000;

/// Metadata for one named variable (global or stack-allocated).
#[derive(Clone, Debug, PartialEq)]
pub struct SymbolInfo {
    /// Base address of the storage.
    pub addr: u64,
    /// Storage type (scalar or array).
    pub ty: Type,
    /// Declaration line.
    pub decl_line: u32,
}

impl SymbolInfo {
    /// Size of the storage in bytes.
    pub fn byte_size(&self) -> u64 {
        self.ty.byte_size()
    }
}

/// A name → storage mapping for one scope (the globals, or one frame).
#[derive(Clone, Debug, Default)]
pub struct SymbolScope {
    map: HashMap<String, SymbolInfo>,
}

impl SymbolScope {
    /// Empty scope.
    pub fn new() -> Self {
        SymbolScope::default()
    }

    /// Insert (or shadow) a symbol.
    pub fn insert(&mut self, name: &str, info: SymbolInfo) {
        self.map.insert(name.to_string(), info);
    }

    /// Look up a symbol.
    pub fn get(&self, name: &str) -> Option<&SymbolInfo> {
        self.map.get(name)
    }

    /// Iterate over `(name, info)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &SymbolInfo)> {
        self.map.iter()
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no symbols are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A serializable snapshot of both segments — what the BLCR-style
/// whole-process checkpointer stores.
#[derive(Clone, Debug, PartialEq)]
pub struct MemoryImage {
    /// Globals segment contents.
    pub globals: Vec<u8>,
    /// Stack segment contents (up to the current stack pointer).
    pub stack: Vec<u8>,
}

impl MemoryImage {
    /// Total image size in bytes.
    pub fn byte_size(&self) -> u64 {
        (self.globals.len() + self.stack.len()) as u64
    }
}

/// The two-segment memory.
#[derive(Clone, Debug)]
pub struct Memory {
    globals: Vec<u8>,
    stack: Vec<u8>,
    sp: u64,
}

impl Memory {
    /// Fresh memory with a globals segment of `global_bytes`.
    pub fn new(global_bytes: u64) -> Memory {
        Memory {
            globals: vec![0u8; global_bytes as usize],
            stack: Vec::new(),
            sp: 0,
        }
    }

    /// Current stack pointer offset (bytes above [`STACK_BASE`]).
    pub fn stack_pointer(&self) -> u64 {
        self.sp
    }

    /// Allocate `bytes` on the stack (8-byte aligned), returning the
    /// address.
    pub fn stack_alloc(&mut self, bytes: u64) -> u64 {
        let aligned = (bytes + 7) & !7;
        let addr = STACK_BASE + self.sp;
        self.sp += aligned;
        if self.stack.len() < self.sp as usize {
            self.stack.resize(self.sp as usize, 0);
        } else {
            // Reused stack region from a returned frame: zero it so programs
            // observe deterministic (calloc-like) contents.
            let start = (addr - STACK_BASE) as usize;
            self.stack[start..self.sp as usize].fill(0);
        }
        addr
    }

    /// Reset the stack pointer to `sp` (frame return).
    pub fn stack_release(&mut self, sp: u64) {
        debug_assert!(sp <= self.sp);
        self.sp = sp;
    }

    fn locate(&self, addr: u64, len: u64) -> Result<(bool, usize), ExecError> {
        let glen = self.globals.len() as u64;
        if addr >= GLOBAL_BASE && addr + len <= GLOBAL_BASE + glen {
            return Ok((true, (addr - GLOBAL_BASE) as usize));
        }
        if addr >= STACK_BASE && addr + len <= STACK_BASE + self.sp {
            return Ok((false, (addr - STACK_BASE) as usize));
        }
        Err(ExecError::OutOfBounds { addr })
    }

    /// Read 8 little-endian bytes.
    pub fn read_u64(&self, addr: u64) -> Result<u64, ExecError> {
        let (is_g, off) = self.locate(addr, 8)?;
        let seg = if is_g { &self.globals } else { &self.stack };
        let mut b = [0u8; 8];
        b.copy_from_slice(&seg[off..off + 8]);
        Ok(u64::from_le_bytes(b))
    }

    /// Write 8 little-endian bytes.
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), ExecError> {
        let (is_g, off) = self.locate(addr, 8)?;
        let seg = if is_g {
            &mut self.globals
        } else {
            &mut self.stack
        };
        seg[off..off + 8].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Read an `i64`.
    pub fn read_i64(&self, addr: u64) -> Result<i64, ExecError> {
        Ok(self.read_u64(addr)? as i64)
    }

    /// Write an `i64`.
    pub fn write_i64(&mut self, addr: u64, v: i64) -> Result<(), ExecError> {
        self.write_u64(addr, v as u64)
    }

    /// Read an `f64`.
    pub fn read_f64(&self, addr: u64) -> Result<f64, ExecError> {
        Ok(f64::from_bits(self.read_u64(addr)?))
    }

    /// Write an `f64`.
    pub fn write_f64(&mut self, addr: u64, v: f64) -> Result<(), ExecError> {
        self.write_u64(addr, v.to_bits())
    }

    /// Copy `len` bytes starting at `addr` into a fresh vector (checkpoint
    /// capture path).
    pub fn read_bytes(&self, addr: u64, len: u64) -> Result<Vec<u8>, ExecError> {
        let (is_g, off) = self.locate(addr, len)?;
        let seg = if is_g { &self.globals } else { &self.stack };
        Ok(seg[off..off + len as usize].to_vec())
    }

    /// Overwrite memory at `addr` with `data` (checkpoint restore path).
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), ExecError> {
        let (is_g, off) = self.locate(addr, data.len() as u64)?;
        let seg = if is_g {
            &mut self.globals
        } else {
            &mut self.stack
        };
        seg[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Bytes currently in use across both segments — the BLCR image size.
    pub fn used_bytes(&self) -> u64 {
        self.globals.len() as u64 + self.sp
    }

    /// Snapshot both segments.
    pub fn image(&self) -> MemoryImage {
        MemoryImage {
            globals: self.globals.clone(),
            stack: self.stack[..self.sp as usize].to_vec(),
        }
    }

    /// Restore a snapshot taken by [`Memory::image`]. The stack pointer is
    /// set to the image's stack extent; segment sizes must be compatible
    /// (same program, same load layout).
    pub fn restore_image(&mut self, img: &MemoryImage) -> Result<(), ExecError> {
        if img.globals.len() != self.globals.len() {
            return Err(ExecError::OutOfBounds { addr: GLOBAL_BASE });
        }
        self.globals.copy_from_slice(&img.globals);
        if self.stack.len() < img.stack.len() {
            self.stack.resize(img.stack.len(), 0);
        }
        self.stack[..img.stack.len()].copy_from_slice(&img.stack);
        self.sp = img.stack.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globals_round_trip() {
        let mut m = Memory::new(64);
        m.write_i64(GLOBAL_BASE, -42).unwrap();
        m.write_f64(GLOBAL_BASE + 8, 2.75).unwrap();
        assert_eq!(m.read_i64(GLOBAL_BASE).unwrap(), -42);
        assert_eq!(m.read_f64(GLOBAL_BASE + 8).unwrap(), 2.75);
    }

    #[test]
    fn stack_alloc_is_aligned_and_zeroed() {
        let mut m = Memory::new(0);
        let a = m.stack_alloc(5);
        let b = m.stack_alloc(8);
        assert_eq!(a, STACK_BASE);
        assert_eq!(b, STACK_BASE + 8);
        assert_eq!(m.read_i64(a).unwrap(), 0);
    }

    #[test]
    fn released_stack_is_rezeroed_on_reuse() {
        let mut m = Memory::new(0);
        let base = m.stack_pointer();
        let a = m.stack_alloc(8);
        m.write_i64(a, 77).unwrap();
        m.stack_release(base);
        let b = m.stack_alloc(8);
        assert_eq!(a, b);
        assert_eq!(m.read_i64(b).unwrap(), 0);
    }

    #[test]
    fn out_of_bounds_reads_fail() {
        let m = Memory::new(8);
        assert!(matches!(
            m.read_i64(GLOBAL_BASE + 8),
            Err(ExecError::OutOfBounds { .. })
        ));
        assert!(matches!(
            m.read_i64(STACK_BASE),
            Err(ExecError::OutOfBounds { .. })
        ));
        assert!(matches!(m.read_i64(0), Err(ExecError::OutOfBounds { .. })));
    }

    #[test]
    fn byte_copies_round_trip() {
        let mut m = Memory::new(32);
        let data: Vec<u8> = (0..16).collect();
        m.write_bytes(GLOBAL_BASE + 8, &data).unwrap();
        assert_eq!(m.read_bytes(GLOBAL_BASE + 8, 16).unwrap(), data);
    }

    #[test]
    fn image_snapshot_and_restore() {
        let mut m = Memory::new(16);
        m.write_i64(GLOBAL_BASE, 1).unwrap();
        let a = m.stack_alloc(8);
        m.write_i64(a, 2).unwrap();
        let img = m.image();
        assert_eq!(img.byte_size(), 16 + 8);

        // Mutate, then restore.
        m.write_i64(GLOBAL_BASE, 9).unwrap();
        m.write_i64(a, 9).unwrap();
        m.restore_image(&img).unwrap();
        assert_eq!(m.read_i64(GLOBAL_BASE).unwrap(), 1);
        assert_eq!(m.read_i64(a).unwrap(), 2);
        assert_eq!(m.used_bytes(), 24);
    }

    #[test]
    fn restore_rejects_mismatched_globals() {
        let m = Memory::new(16);
        let img = m.image();
        let mut other = Memory::new(32);
        assert!(other.restore_image(&img).is_err());
    }

    #[test]
    fn symbol_scope_basics() {
        let mut s = SymbolScope::new();
        s.insert(
            "sum",
            SymbolInfo {
                addr: GLOBAL_BASE,
                ty: Type::I64,
                decl_line: 9,
            },
        );
        assert_eq!(s.get("sum").unwrap().byte_size(), 8);
        assert!(s.get("nope").is_none());
        assert_eq!(s.len(), 1);
    }
}
