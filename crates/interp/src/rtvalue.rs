//! Runtime values flowing through interpreter registers.

use autocheck_trace::TraceValue;
use std::fmt;

/// A dynamic value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RtValue {
    /// 64-bit signed integer.
    I(i64),
    /// Double.
    F(f64),
    /// Boolean (comparison results; register-only, never stored raw).
    B(bool),
    /// Pointer — a virtual address into the interpreter's [`crate::Memory`].
    P(u64),
}

impl RtValue {
    /// Integer payload; booleans coerce to 0/1 (LLVM `i1` semantics when
    /// mixed into integer arithmetic).
    pub fn as_i(&self) -> Option<i64> {
        match self {
            RtValue::I(v) => Some(*v),
            RtValue::B(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Float payload.
    pub fn as_f(&self) -> Option<f64> {
        match self {
            RtValue::F(v) => Some(*v),
            _ => None,
        }
    }

    /// Boolean payload; integers coerce via `!= 0`.
    pub fn as_b(&self) -> Option<bool> {
        match self {
            RtValue::B(b) => Some(*b),
            RtValue::I(v) => Some(*v != 0),
            _ => None,
        }
    }

    /// Pointer payload.
    pub fn as_p(&self) -> Option<u64> {
        match self {
            RtValue::P(p) => Some(*p),
            _ => None,
        }
    }

    /// Width in bits as reported in trace operand records.
    pub fn bit_size(&self) -> u16 {
        match self {
            RtValue::B(_) => 1,
            _ => 64,
        }
    }

    /// Convert to the trace representation.
    pub fn to_trace(&self) -> TraceValue {
        match self {
            RtValue::I(v) => TraceValue::I(*v),
            RtValue::F(v) => TraceValue::F(*v),
            RtValue::B(b) => TraceValue::I(*b as i64),
            RtValue::P(p) => TraceValue::Ptr(*p),
        }
    }

    /// Deterministic, round-trippable display used for program output
    /// comparison in the restart-validation experiments.
    pub fn display_exact(&self) -> String {
        match self {
            RtValue::I(v) => v.to_string(),
            RtValue::F(v) => format!("{v:?}"),
            RtValue::B(b) => (*b as i64).to_string(),
            RtValue::P(p) => format!("0x{p:x}"),
        }
    }
}

impl fmt::Display for RtValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_exact())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercions() {
        assert_eq!(RtValue::I(5).as_i(), Some(5));
        assert_eq!(RtValue::B(true).as_i(), Some(1));
        assert_eq!(RtValue::F(2.5).as_i(), None);
        assert_eq!(RtValue::I(0).as_b(), Some(false));
        assert_eq!(RtValue::I(7).as_b(), Some(true));
        assert_eq!(RtValue::P(16).as_p(), Some(16));
    }

    #[test]
    fn trace_conversion() {
        assert_eq!(RtValue::I(3).to_trace(), TraceValue::I(3));
        assert_eq!(RtValue::B(true).to_trace(), TraceValue::I(1));
        assert_eq!(RtValue::P(0x40).to_trace(), TraceValue::Ptr(0x40));
        assert_eq!(RtValue::F(1.5).to_trace(), TraceValue::F(1.5));
    }

    #[test]
    fn exact_display_round_trips_floats() {
        let v = 0.1f64 + 0.2f64;
        let shown = RtValue::F(v).display_exact();
        assert_eq!(shown.parse::<f64>().unwrap(), v);
    }

    #[test]
    fn bit_sizes() {
        assert_eq!(RtValue::B(false).bit_size(), 1);
        assert_eq!(RtValue::I(1).bit_size(), 64);
    }
}
