//! The online analysis engine: one record in, all state machines advance.
//!
//! [`Engine`] owns a [`RegionTracker`], an [`MliCollector`], a
//! [`DdgBuilder`], and one [`VarStatsBuilder`] per observed variable base.
//! Every [`push`](Engine::push) annotates the record, advances occurrence
//! collection, advances dependency analysis, and folds the resulting access
//! event (if any) into the owning variable's statistics — retiring
//! per-iteration state at iteration boundaries.
//!
//! Memory never scales with the trace: the *live-record count* — the
//! number of per-iteration window entries currently held across all
//! variables — is observable via [`Engine::live_records`] /
//! [`Engine::peak_live_records`] and can be hard-bounded with
//! [`EngineConfig::max_live_records`], in which case `push` fails fast
//! instead of growing past the bound.

use crate::ddg::DdgBuilder;
use crate::graph::CsrGraph;
use crate::mli::{Collect, MliCollector, MliEntry};
use crate::region::RegionTracker;
use crate::stats::{VarStats, VarStatsBuilder};
use autocheck_obs::{CounterId, Gauge, GaugeId, HistId, Metrics, TimerId};
use autocheck_trace::{AnalysisCtx, Record, ResourceExceeded, ResourceKind, SymId};
use fxhash::FxSeededHashMap;
use std::fmt;

/// Per-stage fold timing samples 1 record in 64: cheap enough to leave on
/// for week-long streams, dense enough to apportion fold time between the
/// region/MLI/DDG stages. `engine.fold_samples` counts the sampled records.
const FOLD_SAMPLE_MASK: u64 = 63;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Function containing the main computation loop.
    pub function: String,
    /// First source line of the loop statement.
    pub start_line: u32,
    /// Last source line of the loop body.
    pub end_line: u32,
    /// Occurrence-collection strictness.
    pub collect: Collect,
    /// Selective trace iteration (identical results; `true` skips
    /// irrelevant opcodes).
    pub selective: bool,
    /// Hard bound on the live-record window; `None` = observe only.
    pub max_live_records: Option<usize>,
}

impl EngineConfig {
    /// Configuration for the given main-loop region with batch-default
    /// analysis settings.
    pub fn for_region(function: impl Into<String>, start_line: u32, end_line: u32) -> EngineConfig {
        EngineConfig {
            function: function.into(),
            start_line,
            end_line,
            collect: Collect::AnyAccess,
            selective: true,
            max_live_records: None,
        }
    }
}

/// `push` exceeded [`EngineConfig::max_live_records`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LiveBoundExceeded {
    /// Live window entries at the moment of failure.
    pub live: usize,
    /// The configured bound.
    pub bound: usize,
}

impl fmt::Display for LiveBoundExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "streaming live-record bound exceeded: {} live records > bound {}",
            self.live, self.bound
        )
    }
}

impl std::error::Error for LiveBoundExceeded {}

/// A [`push`](Engine::push) failure: the engine refused to grow further.
///
/// Both variants are recoverable, typed errors — the engine never panics on
/// a hostile trace; it stops at the first crossed ceiling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The live-record window crossed its bound
    /// ([`EngineConfig::max_live_records`] or the session's
    /// `ResourceLimits::max_live_records`).
    LiveBound(LiveBoundExceeded),
    /// A session resource ceiling (DDG nodes or edges) was crossed.
    Resource(ResourceExceeded),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::LiveBound(e) => write!(f, "{e}"),
            EngineError::Resource(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::LiveBound(e) => Some(e),
            EngineError::Resource(e) => Some(e),
        }
    }
}

impl From<LiveBoundExceeded> for EngineError {
    fn from(e: LiveBoundExceeded) -> Self {
        EngineError::LiveBound(e)
    }
}

impl From<ResourceExceeded> for EngineError {
    fn from(e: ResourceExceeded) -> Self {
        EngineError::Resource(e)
    }
}

/// Everything the engine knows at end-of-trace. `autocheck-core` turns
/// this into a `Report` byte-identical to the batch pipeline's.
#[derive(Clone, Debug)]
pub struct EngineOutcome {
    /// The MLI set, sorted like the batch `find_mli_vars`.
    pub mli: Vec<MliEntry>,
    /// Folded access statistics per variable base address (all observed
    /// bases, not just MLI — the consumer filters). Hashed with the
    /// session's address seed.
    pub stats: FxSeededHashMap<u64, VarStats>,
    /// Loop iterations observed.
    pub iterations: u32,
    /// Records consumed.
    pub records: u64,
    /// Peak live-record window across the run.
    pub peak_live_records: usize,
    /// Label of the loop header's basic block, if identified.
    pub header_label: Option<SymId>,
    /// The dependency graph, frozen into its CSR form (bounded by the
    /// program, not the trace) — ready for contraction and DOT rendering.
    pub ddg: CsrGraph,
}

/// The online analysis engine.
pub struct Engine {
    region: RegionTracker,
    mli: MliCollector,
    ddg: DdgBuilder,
    stats: FxSeededHashMap<u64, VarStatsBuilder>,
    addr_seed: u64,
    records: u64,
    /// The live-record window level and its true peak, tracked in exactly
    /// one place (satellite of the observability PR): breach reporting,
    /// [`Engine::peak_live_records`], and the `engine.live_records` ledger
    /// gauge all read this.
    live: Gauge,
    max_live: Option<usize>,
    /// True when `max_live` came from the session's `ResourceLimits`
    /// rather than an explicit `EngineConfig::max_live_records`: only
    /// quota-sourced breaches book the `session.limit_exceeded` counter
    /// (its contract — ledgers read it as tenant quota pressure, not as an
    /// intentional engine-config window bound).
    live_bound_is_quota: bool,
    /// DDG size ceilings from the session's `ResourceLimits` (checked
    /// against the builder's incremental node/edge counters on each push
    /// that grew the graph).
    max_ddg_nodes: Option<u64>,
    max_ddg_edges: Option<u64>,
    metrics: Metrics,
    access_events: u64,
    /// Iteration tracked at the last histogram flush (metrics only).
    hist_iter: u32,
    /// `records` at the last iteration boundary (metrics only).
    hist_iter_start: u64,
}

impl Engine {
    /// Build an engine for one analysis run in the thread's current symbol
    /// space with deterministic address hashing.
    pub fn new(cfg: EngineConfig) -> Engine {
        Self::with_ctx(cfg, &AnalysisCtx::current())
    }

    /// Build an engine scoped to `ctx`: region/MLI symbols intern into the
    /// session's space, and every map keyed by trace-supplied addresses
    /// hashes with the session's seed.
    pub fn with_ctx(cfg: EngineConfig, ctx: &AnalysisCtx) -> Engine {
        Engine {
            region: RegionTracker::with_ctx(ctx, cfg.function, cfg.start_line, cfg.end_line),
            mli: MliCollector::with_ctx(cfg.collect, ctx),
            ddg: DdgBuilder::new(cfg.selective),
            stats: ctx.addr_map(),
            addr_seed: ctx.addr_seed(),
            records: 0,
            live: Gauge::new(),
            // An explicit engine-config bound wins; otherwise the session's
            // `ResourceLimits` live-record ceiling applies.
            max_live: cfg.max_live_records.or(ctx
                .limits()
                .get(ResourceKind::LiveRecords)
                .map(|n| n as usize)),
            live_bound_is_quota: cfg.max_live_records.is_none()
                && ctx.limits().get(ResourceKind::LiveRecords).is_some(),
            max_ddg_nodes: ctx.limits().get(ResourceKind::DdgNodes),
            max_ddg_edges: ctx.limits().get(ResourceKind::DdgEdges),
            metrics: ctx.metrics().clone(),
            access_events: 0,
            hist_iter: 0,
            hist_iter_start: 0,
        }
    }

    /// Consume one trace record. Call in execution order.
    pub fn push(&mut self, r: &Record) -> Result<(), EngineError> {
        self.records += 1;
        // 1-in-64 per-stage fold timing; everything else on the metrics
        // path is counter arithmetic flushed at finish().
        let sample = self.metrics.is_enabled() && self.records & FOLD_SAMPLE_MASK == 0;
        if sample {
            self.metrics.count(CounterId::FoldSamples, 1);
        }
        let a = if sample {
            let _s = self.metrics.span(TimerId::FoldRegion);
            self.region.annotate(r)
        } else {
            self.region.annotate(r)
        };
        if sample {
            let _s = self.metrics.span(TimerId::FoldMli);
            self.mli.observe(r, a);
        } else {
            self.mli.observe(r, a);
        }
        let _ddg_span = if sample {
            Some(self.metrics.span(TimerId::FoldDdg))
        } else {
            None
        };
        if let Some(e) = self.ddg.observe(r, a) {
            self.access_events += 1;
            let builder = self
                .stats
                .entry(e.base)
                .or_insert_with(|| VarStatsBuilder::with_seed(self.addr_seed));
            if e.phase == crate::region::Phase::After {
                // After-loop events are reads by construction.
                builder.feed_after_read();
            } else {
                let before = builder.live();
                builder.feed_inside(e.iter, e.elem, e.is_write);
                // feed_inside may have retired a whole window and added one
                // entry; apply the net change (live always includes this
                // builder's `before` entries, so the subtraction is safe).
                let after = builder.live();
                if after >= before {
                    self.live.add((after - before) as u64);
                } else {
                    self.live.sub((before - after) as u64);
                }
            }
            if let Some(bound) = self.max_live {
                let live = self.live.value() as usize;
                if live > bound {
                    if self.live_bound_is_quota {
                        self.metrics.count(CounterId::LimitExceeded, 1);
                    }
                    return Err(LiveBoundExceeded { live, bound }.into());
                }
            }
        }
        // DDG ceilings: checked after every observe — the graph can grow
        // on dependence bookkeeping even when no access event comes out.
        if let Some(limit) = self.max_ddg_nodes {
            let used = self.ddg.graph().len() as u64;
            if used > limit {
                self.metrics.count(CounterId::LimitExceeded, 1);
                return Err(ResourceExceeded {
                    kind: ResourceKind::DdgNodes,
                    used,
                    limit,
                }
                .into());
            }
        }
        if let Some(limit) = self.max_ddg_edges {
            let used = self.ddg.graph().edge_count() as u64;
            if used > limit {
                self.metrics.count(CounterId::LimitExceeded, 1);
                return Err(ResourceExceeded {
                    kind: ResourceKind::DdgEdges,
                    used,
                    limit,
                }
                .into());
            }
        }
        if self.metrics.is_enabled() {
            let iter = self.region.iterations();
            if iter != self.hist_iter {
                // One completed iteration (or a jump over empty ones):
                // record how many records it spanned.
                self.metrics.observe(
                    HistId::IterationRecords,
                    self.records - 1 - self.hist_iter_start,
                );
                self.hist_iter = iter;
                self.hist_iter_start = self.records - 1;
            }
        }
        Ok(())
    }

    /// Fast-forward one record in *replay* mode: advance the region
    /// tracker plus the binding/provenance state of the MLI collector and
    /// DDG builder without recording any results. After replaying records
    /// `0..k`, this engine observes record `k` exactly as a full engine
    /// that pushed `0..k` would — which is what lets a shard worker start
    /// mid-trace and still produce byte-identical output. Replay bypasses
    /// statistics, access events, live-window accounting, resource
    /// ceilings, and metrics entirely.
    pub fn push_replay(&mut self, r: &Record) {
        let a = self.region.annotate(r);
        self.mli.observe_replay(r, a);
        self.ddg.observe_replay(r, a);
    }

    /// Live window entries currently held across all variables.
    pub fn live_records(&self) -> usize {
        self.live.value() as usize
    }

    /// Maximum of [`live_records`](Engine::live_records) over the run.
    pub fn peak_live_records(&self) -> usize {
        self.live.peak() as usize
    }

    /// Records consumed so far.
    pub fn records_seen(&self) -> u64 {
        self.records
    }

    /// Finalize: match the MLI set, retire all windows, and hand back the
    /// folded statistics. Flushes the engine's totals (records, access
    /// events, iterations, live-window gauge, DDG size) into the session's
    /// metrics registry.
    pub fn finish(self) -> EngineOutcome {
        let mli = self.mli.finish();
        let stats: FxSeededHashMap<u64, VarStats> = self
            .stats
            .into_iter()
            .map(|(base, b)| (base, b.finish()))
            .collect();
        let iterations = self.region.iterations();
        let ddg = self.ddg.finish();
        let m = &self.metrics;
        if m.is_enabled() {
            m.count(CounterId::EngineRecords, self.records);
            m.count(CounterId::AccessEvents, self.access_events);
            m.gauge_set(GaugeId::Iterations, iterations as u64);
            m.gauge_merge(GaugeId::LiveRecords, &self.live);
            m.gauge_set(GaugeId::DdgNodes, ddg.len() as u64);
            m.gauge_set(GaugeId::DdgEdges, ddg.edge_count() as u64);
        }
        EngineOutcome {
            mli,
            stats,
            iterations,
            records: self.records,
            peak_live_records: self.live.peak() as usize,
            header_label: self.region.header_label(),
            ddg,
        }
    }

    /// Extract this engine's partial state for a sharded run. Unlike
    /// [`finish`](Engine::finish), nothing is flushed to the metrics
    /// registry — [`crate::shard::merge_shard_states`] flushes the merged
    /// totals exactly once for the whole run.
    pub fn into_shard_state(self) -> EngineShardState {
        let stats = self
            .stats
            .into_iter()
            .map(|(base, b)| {
                let first_elem = b.first_elem();
                (base, b.finish(), first_elem)
            })
            .collect();
        EngineShardState {
            iterations: self.region.iterations(),
            header_label: self.region.header_label(),
            mli: self.mli,
            ddg: self.ddg,
            stats,
            records: self.records,
            access_events: self.access_events,
            live: self.live,
        }
    }
}

/// One worker's partial state from a sharded run — everything
/// [`crate::shard::merge_shard_states`] needs to fold the workers back
/// into a single [`EngineOutcome`] byte-identical to a serial run.
/// Produced by [`Engine::into_shard_state`].
pub struct EngineShardState {
    pub(crate) mli: MliCollector,
    pub(crate) ddg: DdgBuilder,
    /// Finished per-base statistics plus the first element address each
    /// builder observed (the cross-shard `multi_elem` anchor — see
    /// [`VarStatsBuilder::first_elem`]).
    pub(crate) stats: Vec<(u64, VarStats, Option<u64>)>,
    /// Iterations this worker's tracker counted over records `0..end`
    /// (replay included) — the *last* shard's value is the serial total.
    pub(crate) iterations: u32,
    pub(crate) header_label: Option<SymId>,
    /// Records analyzed in full mode (replay excluded), so shard records
    /// sum to the serial total.
    pub(crate) records: u64,
    pub(crate) access_events: u64,
    pub(crate) live: Gauge,
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    fn parse_str(
        text: &str,
    ) -> Result<Vec<autocheck_trace::Record>, autocheck_trace::reader::TraceReadError> {
        autocheck_trace::TraceSource::from_str(text).records()
    }

    /// Two-iteration accumulator loop (sum read+written per iteration).
    pub(crate) const TWO_ITER: &str = "\
0,2,main,2:1,0,28,0,
1,64,0,0,,
2,64,0x7f0000000000,1,sum,
0,5,main,5:1,1,27,1,
1,64,0x7f0000000000,1,sum,
r,64,0,1,1,
0,5,main,5:1,1,2,2,
1,1,1,1,9,
0,6,main,6:1,2,27,3,
1,64,0x7f0000000000,1,sum,
r,64,0,1,2,
0,6,main,6:1,2,8,4,
1,64,0,1,2,
2,64,1,0,,
r,64,1,1,3,
0,6,main,6:1,2,28,5,
1,64,1,1,3,
2,64,0x7f0000000000,1,sum,
0,5,main,5:1,1,27,6,
1,64,0x7f0000000000,1,sum,
r,64,1,1,4,
0,5,main,5:1,1,2,7,
1,1,1,1,9,
0,6,main,6:1,2,27,8,
1,64,1,1,5,
2,64,2,0,,
r,64,2,1,6,
0,6,main,6:1,2,27,9,
1,64,0x7f0000000000,1,sum,
r,64,1,1,7,
0,6,main,6:1,2,8,10,
1,64,1,1,7,
2,64,1,0,,
r,64,2,1,8,
0,6,main,6:1,2,28,11,
1,64,2,1,8,
2,64,0x7f0000000000,1,sum,
0,5,main,5:1,1,27,12,
1,64,0x7f0000000000,1,sum,
r,64,2,1,9,
0,5,main,5:1,1,2,13,
1,1,0,1,9,
0,9,main,9:1,3,27,14,
1,64,0x7f0000000000,1,sum,
r,64,2,1,10,
";

    fn run_engine(max_live: Option<usize>) -> Result<EngineOutcome, EngineError> {
        let recs = parse_str(TWO_ITER).unwrap();
        let mut cfg = EngineConfig::for_region("main", 5, 7);
        cfg.max_live_records = max_live;
        let mut engine = Engine::new(cfg);
        for r in &recs {
            engine.push(r)?;
        }
        Ok(engine.finish())
    }

    #[test]
    fn mli_and_stats_come_out() {
        let out = run_engine(None).unwrap();
        assert_eq!(out.mli.len(), 1);
        assert_eq!(out.mli[0].name.as_str(), "sum");
        let s = out.stats[&0x7f00_0000_0000];
        assert!(s.carried, "sum is read before written each iteration");
        assert!(s.written_in_loop);
        assert!(s.read_after_loop);
        assert_eq!(out.iterations, 2);
        assert_eq!(out.records, 15);
    }

    #[test]
    fn live_window_stays_below_trace_length() {
        let out = run_engine(None).unwrap();
        assert!(out.peak_live_records >= 1);
        assert!(
            (out.peak_live_records as u64) < out.records,
            "peak live {} must undercut total {}",
            out.peak_live_records,
            out.records
        );
    }

    #[test]
    fn generous_bound_passes_tight_bound_fails() {
        assert!(run_engine(Some(64)).is_ok());
        let err = run_engine(Some(0)).unwrap_err();
        let EngineError::LiveBound(ref e) = err else {
            panic!("expected LiveBound, got {err:?}");
        };
        assert_eq!(e.bound, 0);
        assert!(e.live > 0);
        assert!(err.to_string().contains("bound 0"));
    }

    #[test]
    fn ctx_limits_bound_live_window_and_ddg_size() {
        use autocheck_trace::ResourceLimits;
        // Live-record ceiling via ctx limits surfaces as LiveBound, the
        // same typed error as an explicit EngineConfig bound.
        let ctx = AnalysisCtx::session().with_limits(ResourceLimits::new().max_live_records(0));
        let recs = {
            let _g = ctx.enter();
            parse_str(TWO_ITER).unwrap()
        };
        let mut engine = Engine::with_ctx(EngineConfig::for_region("main", 5, 7), &ctx);
        let err = recs
            .iter()
            .try_for_each(|r| engine.push(r))
            .expect_err("live bound 0 must trip");
        assert!(matches!(err, EngineError::LiveBound(_)), "got {err:?}");

        // DDG node ceiling surfaces as a typed ResourceExceeded.
        let ctx = AnalysisCtx::session().with_limits(ResourceLimits::new().max_ddg_nodes(1));
        let recs = {
            let _g = ctx.enter();
            parse_str(TWO_ITER).unwrap()
        };
        let mut engine = Engine::with_ctx(EngineConfig::for_region("main", 5, 7), &ctx);
        let err = recs
            .iter()
            .try_for_each(|r| engine.push(r))
            .expect_err("ddg node bound 1 must trip");
        match err {
            EngineError::Resource(e) => {
                assert_eq!(e.kind, ResourceKind::DdgNodes);
                assert_eq!(e.limit, 1);
                assert!(e.used > 1);
            }
            other => panic!("expected Resource(DdgNodes), got {other:?}"),
        }
    }

    #[test]
    fn limit_counter_books_only_quota_sourced_live_bounds() {
        use autocheck_obs::{CounterId, Metrics};
        use autocheck_trace::ResourceLimits;
        // A live bound from the session's ResourceLimits is tenant quota
        // pressure: breaching it books `session.limit_exceeded`.
        let ctx = AnalysisCtx::session()
            .with_metrics(Metrics::enabled())
            .with_limits(ResourceLimits::new().max_live_records(0));
        let recs = {
            let _g = ctx.enter();
            parse_str(TWO_ITER).unwrap()
        };
        let mut engine = Engine::with_ctx(EngineConfig::for_region("main", 5, 7), &ctx);
        recs.iter()
            .try_for_each(|r| engine.push(r))
            .expect_err("quota live bound 0 must trip");
        assert_eq!(ctx.metrics().counter(CounterId::LimitExceeded), 1);

        // The same breach from an explicit EngineConfig window bound is an
        // intentional configuration choice, not quota pressure: same typed
        // error, but the quota counter stays untouched.
        let ctx = AnalysisCtx::session().with_metrics(Metrics::enabled());
        let recs = {
            let _g = ctx.enter();
            parse_str(TWO_ITER).unwrap()
        };
        let mut engine = Engine::with_ctx(
            EngineConfig {
                max_live_records: Some(0),
                ..EngineConfig::for_region("main", 5, 7)
            },
            &ctx,
        );
        let err = recs
            .iter()
            .try_for_each(|r| engine.push(r))
            .expect_err("config live bound 0 must trip");
        assert!(matches!(err, EngineError::LiveBound(_)), "got {err:?}");
        assert_eq!(ctx.metrics().counter(CounterId::LimitExceeded), 0);
    }

    #[test]
    fn metrics_capture_engine_totals_and_live_peak() {
        use autocheck_obs::{CounterId, GaugeId, Metrics};
        let ctx = AnalysisCtx::session().with_metrics(Metrics::enabled());
        let recs = {
            let _g = ctx.enter();
            parse_str(TWO_ITER).unwrap()
        };
        let mut engine = Engine::with_ctx(EngineConfig::for_region("main", 5, 7), &ctx);
        for r in &recs {
            engine.push(r).unwrap();
        }
        let peak = engine.peak_live_records();
        let out = engine.finish();
        let m = ctx.metrics();
        assert_eq!(m.counter(CounterId::EngineRecords), out.records);
        assert!(m.counter(CounterId::AccessEvents) > 0);
        assert_eq!(m.gauge(GaugeId::Iterations), (2, 2));
        // The registry gauge is the same number the engine reported —
        // peak tracked in exactly one place.
        assert_eq!(m.gauge(GaugeId::LiveRecords).1, peak as u64);
        assert_eq!(out.peak_live_records, peak);
        assert_eq!(m.gauge(GaugeId::DdgNodes).0, out.ddg.len() as u64);
        assert_eq!(m.gauge(GaugeId::DdgEdges).0, out.ddg.edge_count() as u64);
    }

    #[test]
    fn metrics_do_not_change_engine_results() {
        let plain = run_engine(None).unwrap();
        let ctx = AnalysisCtx::session().with_metrics(autocheck_obs::Metrics::enabled());
        let recs = {
            let _g = ctx.enter();
            parse_str(TWO_ITER).unwrap()
        };
        let mut engine = Engine::with_ctx(EngineConfig::for_region("main", 5, 7), &ctx);
        for r in &recs {
            engine.push(r).unwrap();
        }
        let metered = engine.finish();
        assert_eq!(plain.iterations, metered.iterations);
        assert_eq!(plain.records, metered.records);
        assert_eq!(plain.peak_live_records, metered.peak_live_records);
        assert_eq!(plain.mli.len(), metered.mli.len());
        assert_eq!(plain.ddg.len(), metered.ddg.len());
        assert_eq!(plain.ddg.edge_count(), metered.ddg.edge_count());
    }

    #[test]
    fn ddg_comes_out_frozen_and_bounded() {
        let out = run_engine(None).unwrap();
        assert!(!out.ddg.is_empty());
        assert!(out.ddg.edge_count() > 0);
        // The frozen graph is traversable: some node has a parent.
        assert!((0..out.ddg.len()).any(|n| !out.ddg.parent_slice(n).is_empty()));
        assert_eq!(out.header_label.map(|l| l.as_str()).as_deref(), Some("1"));
    }
}
