//! Pointer provenance and opcode relevance — the record-level rules shared
//! verbatim by the batch and streaming pipelines.
//!
//! Both pipelines resolve pointer operands to `(variable, base address)`
//! with the same two rules (the paper's "POINTER ASSIGNMENT" tracking and
//! the address-consistency Challenge-2 discrimination) and filter records
//! by the same Table-I opcode set. Keeping the single copy here — the crate
//! both pipelines depend on — means a future fix to either rule cannot
//! desynchronize batch and streaming results.
//!
//! All maps key on interned names ([`NameMap`]): resolution is vector
//! indexing on `Copy` ids, with no string hashing or refcount traffic in
//! the per-record loop.

use autocheck_trace::{record::opcodes, Name, NameMap, Record, SymId};

/// Resolves pointer operands to `(variable, base address)` by tracking
/// GEP/BitCast provenance on the fly (the paper's "POINTER ASSIGNMENT"
/// rule).
#[derive(Clone, Debug, Default)]
pub struct Provenance {
    map: NameMap<(SymId, u64)>,
}

impl Provenance {
    /// Update provenance from one record; call in execution order.
    pub fn observe(&mut self, r: &Record) {
        match r.opcode {
            opcodes::GETELEMENTPTR | opcodes::BITCAST => {
                let (Some(base), Some(res)) = (r.op1(), r.result.as_ref()) else {
                    return;
                };
                let resolved = self.resolve(base.name, base.value.as_ptr());
                if let Some(hit) = resolved {
                    self.map.insert(res.name, hit);
                }
            }
            _ => {}
        }
    }

    /// Resolve a pointer-operand name to its base variable.
    pub fn resolve(&self, name: Name, value: Option<u64>) -> Option<(SymId, u64)> {
        match name {
            Name::Sym(s) => {
                if let Some(&hit) = self.map.get(name) {
                    // An alias registered by an earlier GEP/BitCast.
                    Some(hit)
                } else {
                    // A named variable is its own base.
                    value.map(|v| (s, v))
                }
            }
            Name::Temp(_) => self.map.get(name).copied(),
            Name::None => None,
        }
    }
}

/// Resolve a name against a dependency-analysis register/variable map,
/// trusting a registered alias (parameter triplet or alloca) only when it
/// is consistent with the observed address, so stale aliases from returned
/// frames never misattribute (the paper's address-based Challenge-2
/// discrimination).
pub fn resolve_alias(
    reg_var: &NameMap<(SymId, u64)>,
    name: Name,
    value: Option<u64>,
) -> Option<(SymId, u64)> {
    match name {
        Name::Sym(s) => {
            if let Some(&(n, b)) = reg_var.get(name) {
                if value.is_none() || value == Some(b) {
                    return Some((n, b));
                }
            }
            value.map(|v| (s, v))
        }
        Name::Temp(_) => reg_var.get(name).copied(),
        Name::None => None,
    }
}

/// The paper's Table-I opcode set (plus `Ret`, needed to track call exits).
pub fn relevant_opcode(op: u16) -> bool {
    (8..=25).contains(&op)
        || matches!(
            op,
            opcodes::ALLOCA
                | opcodes::LOAD
                | opcodes::STORE
                | opcodes::GETELEMENTPTR
                | opcodes::BITCAST
                | opcodes::ICMP
                | opcodes::FCMP
                | opcodes::ZEXT
                | opcodes::SITOFP
                | opcodes::FPTOSI
                | opcodes::CALL
                | opcodes::RET
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_variable_is_its_own_base() {
        let p = Provenance::default();
        let got = p.resolve(Name::sym("a"), Some(0x1000));
        assert_eq!(got, Some((SymId::intern("a"), 0x1000)));
    }

    #[test]
    fn unregistered_temp_does_not_resolve() {
        let p = Provenance::default();
        assert_eq!(p.resolve(Name::Temp(3), Some(0x1000)), None);
        assert_eq!(p.resolve(Name::None, Some(0x1000)), None);
    }

    #[test]
    fn alias_with_stale_address_falls_back_to_value() {
        let mut reg_var = NameMap::new();
        reg_var.insert(Name::sym("p"), (SymId::intern("a"), 0x1000u64));
        // Consistent address: trust the alias.
        assert_eq!(
            resolve_alias(&reg_var, Name::sym("p"), Some(0x1000)),
            Some((SymId::intern("a"), 0x1000))
        );
        // Inconsistent address (stale frame): fall back to the observation.
        assert_eq!(
            resolve_alias(&reg_var, Name::sym("p"), Some(0x2000)),
            Some((SymId::intern("p"), 0x2000))
        );
    }

    #[test]
    fn table_one_opcode_set() {
        assert!(relevant_opcode(opcodes::LOAD));
        assert!(relevant_opcode(opcodes::STORE));
        assert!(relevant_opcode(opcodes::RET));
        assert!(relevant_opcode(8) && relevant_opcode(25), "arithmetic band");
        assert!(!relevant_opcode(0));
    }
}
