//! Bounded per-variable access statistics — the input to the
//! classification heuristics, folded incrementally.
//!
//! The batch classifier (`autocheck_core::classify`) walks a variable's
//! full R/W event sequence and derives a handful of booleans. This module
//! captures that derivation as an **online fold**: events are pushed one at
//! a time and the per-iteration element window is retired the moment the
//! iteration number advances, so a variable's live state is bounded by the
//! elements it touches in one iteration — never by the trace length.
//!
//! `autocheck-core`'s batch path uses this same builder for its
//! event-slice classification, so the two pipelines share one fold and one
//! decision function and cannot drift apart.

use fxhash::{FxSeededHashMap, FxSeededState};

/// Everything the WAR/RAPO/Outcome heuristics need to know about one
/// variable, in O(1) space.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VarStats {
    /// The variable was written inside the loop.
    pub written_in_loop: bool,
    /// The variable was read inside the loop.
    pub read_in_loop: bool,
    /// The variable was read after the loop exited.
    pub read_after_loop: bool,
    /// Some element's first access within an iteration was a read: the
    /// value carries across iterations.
    pub carried: bool,
    /// Some iteration read an element it never wrote (a *stale* read):
    /// partial overwriting cannot reconstruct it.
    pub stale_read: bool,
    /// The observed footprint spans more than one element address.
    pub multi_elem: bool,
}

/// Per-element state within the current iteration's window.
#[derive(Clone, Copy, Debug)]
struct ElemAccess {
    /// First access in this iteration was a read.
    first_is_read: bool,
    read: bool,
    written: bool,
}

/// Incremental fold of one variable's access events into [`VarStats`].
///
/// Feed in-loop events via [`feed_inside`](VarStatsBuilder::feed_inside)
/// (in time order — iteration numbers must be non-decreasing, which trace
/// order guarantees) and after-loop reads via
/// [`feed_after_read`](VarStatsBuilder::feed_after_read); then call
/// [`finish`](VarStatsBuilder::finish).
#[derive(Clone, Debug, Default)]
pub struct VarStatsBuilder {
    stats: VarStats,
    cur_iter: u32,
    /// Keyed by element *addresses* from the trace — seeded per session
    /// when the source is untrusted (seed 0 = deterministic Fx).
    window: FxSeededHashMap<u64, ElemAccess>,
    first_elem: Option<u64>,
}

impl VarStatsBuilder {
    /// A fresh builder with deterministic element-address hashing.
    pub fn new() -> VarStatsBuilder {
        VarStatsBuilder::default()
    }

    /// A builder whose element-address window hashes with `seed` (the
    /// session's address seed for untrusted traces; 0 = deterministic).
    pub fn with_seed(seed: u64) -> VarStatsBuilder {
        VarStatsBuilder {
            window: FxSeededHashMap::with_hasher(FxSeededState::with_seed(seed)),
            ..VarStatsBuilder::default()
        }
    }

    /// Entries currently held in the per-iteration window — the variable's
    /// contribution to the engine's live-record count.
    pub fn live(&self) -> usize {
        self.window.len()
    }

    /// Fold one in-loop access. An iteration boundary can retire the whole
    /// window while the access adds at most one entry, so callers tracking
    /// an aggregate live count must diff [`live`](Self::live) around the
    /// call (as the engine does) rather than assume a fixed delta.
    pub fn feed_inside(&mut self, iter: u32, elem: u64, is_write: bool) {
        if iter != self.cur_iter {
            self.retire_window();
            self.cur_iter = iter;
        }
        if is_write {
            self.stats.written_in_loop = true;
        } else {
            self.stats.read_in_loop = true;
        }
        match self.first_elem {
            None => self.first_elem = Some(elem),
            Some(f) if f != elem => self.stats.multi_elem = true,
            Some(_) => {}
        }
        let entry = self.window.entry(elem).or_insert(ElemAccess {
            first_is_read: !is_write,
            read: false,
            written: false,
        });
        if is_write {
            entry.written = true;
        } else {
            entry.read = true;
        }
    }

    /// Fold one after-loop read.
    pub fn feed_after_read(&mut self) {
        self.stats.read_after_loop = true;
    }

    /// The first element address this builder observed, if any — the
    /// anchor the `multi_elem` flag compares against. Sharded analysis
    /// reads it to detect footprints that span shards: two shards can each
    /// see a single (different) element, and only the cross-shard
    /// comparison of first elements reveals the multi-element footprint.
    pub fn first_elem(&self) -> Option<u64> {
        self.first_elem
    }

    /// Retire the current iteration's window into the running booleans and
    /// release its memory.
    fn retire_window(&mut self) {
        for acc in self.window.values() {
            if acc.first_is_read {
                self.stats.carried = true;
            }
            if acc.read && !acc.written {
                self.stats.stale_read = true;
            }
        }
        self.window.clear();
    }

    /// Retire the final window and return the folded statistics.
    pub fn finish(mut self) -> VarStats {
        self.retire_window();
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_then_write_is_carried() {
        let mut b = VarStatsBuilder::new();
        b.feed_inside(0, 0x10, false);
        b.feed_inside(0, 0x10, true);
        b.feed_inside(1, 0x10, false);
        b.feed_inside(1, 0x10, true);
        let s = b.finish();
        assert!(s.carried);
        assert!(s.written_in_loop && s.read_in_loop);
        assert!(
            !s.stale_read,
            "the read element is rewritten each iteration"
        );
        assert!(!s.multi_elem);
    }

    #[test]
    fn write_then_read_is_not_carried() {
        let mut b = VarStatsBuilder::new();
        b.feed_inside(0, 0x10, true);
        b.feed_inside(0, 0x10, false);
        let s = b.finish();
        assert!(!s.carried);
        assert!(!s.stale_read);
    }

    #[test]
    fn stale_read_detected_per_iteration() {
        // Iteration 0 writes elem A and reads A and B; B is never written
        // in iteration 0 → stale.
        let mut b = VarStatsBuilder::new();
        b.feed_inside(0, 0xa0, true);
        b.feed_inside(0, 0xa0, false);
        b.feed_inside(0, 0xb0, false);
        let s = b.finish();
        assert!(s.stale_read);
        assert!(s.multi_elem);
    }

    #[test]
    fn window_retires_at_iteration_boundary() {
        let mut b = VarStatsBuilder::new();
        for elem in [0x10u64, 0x18, 0x20] {
            b.feed_inside(0, elem, true);
        }
        assert_eq!(b.live(), 3);
        b.feed_inside(1, 0x10, true);
        assert_eq!(b.live(), 1, "iteration-0 window was retired");
    }

    #[test]
    fn repeated_access_does_not_grow_window() {
        let mut b = VarStatsBuilder::new();
        for _ in 0..100 {
            b.feed_inside(0, 0x10, false);
        }
        assert_eq!(b.live(), 1);
    }

    #[test]
    fn after_loop_read_flag() {
        let mut b = VarStatsBuilder::new();
        b.feed_inside(0, 0x10, true);
        b.feed_after_read();
        let s = b.finish();
        assert!(s.read_after_loop);
        assert!(!s.carried);
    }

    #[test]
    fn skipped_iterations_fold_correctly() {
        // A variable touched only in iterations 0 and 5: the boundary fold
        // must fire once, not per iteration.
        let mut b = VarStatsBuilder::new();
        b.feed_inside(0, 0x10, false);
        b.feed_inside(5, 0x10, true);
        let s = b.finish();
        assert!(s.carried, "iteration 0's lone read was first access");
    }
}
