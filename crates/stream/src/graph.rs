//! The shared dependency-graph core: one growable graph, one frozen CSR
//! form, one DOT writer — used verbatim by both the batch and streaming
//! pipelines.
//!
//! Before unification the repo carried two graph implementations kept
//! byte-parallel only by tests: the batch `DepGraph` (per-node `BTreeSet`
//! adjacency) and the streaming `StreamGraph` (edge hash set). Both interned
//! nodes through the same dense [`NodeIndex`]; everything else was
//! duplicated. This module is the single replacement:
//!
//! * [`Graph`] — the growable form both builders mutate: a dense node
//!   table in first-intern order plus a deduplicating integer-keyed edge
//!   set. Insertion is O(1) amortized with no per-node ordered containers.
//! * [`CsrGraph`] — the frozen form produced by [`Graph::freeze`]:
//!   compressed sparse rows in **both directions**, with each node's parent
//!   and child slices sorted ascending. Traversals (Algorithm 1
//!   contraction, DOT rendering, reachability queries) run on contiguous
//!   slices — no hashing, no tree walks.
//! * [`DotWriter`] — the one Graphviz serializer. Full-DDG and
//!   contracted-DDG rendering differ only in graph name, `rankdir`, and
//!   node shapes, so both feed the same writer; labels are written straight
//!   into the output buffer via [`fmt::Display`], never through a
//!   per-node `String`.
//!
//! Node ids are assigned in first-intern order (the [`NodeIndex`]
//! contract), and frozen adjacency is sorted, so DOT output is
//! byte-identical to the pre-unification batch renderer.

use autocheck_trace::{Name, NodeIndex, SymId};
use fxhash::FxHashSet;
use std::fmt;
use std::fmt::Write as _;

/// A node of the dependency graph. `Copy` — both kinds are interned
/// integers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A named memory location (identified by base address).
    Var {
        /// Display name (interned).
        name: SymId,
        /// Base address (identity).
        base: u64,
    },
    /// A register (temporary or callee parameter alias).
    Reg {
        /// Register name.
        name: Name,
    },
}

impl NodeKind {
    /// Human-readable label as an owned string. Output paths write labels
    /// through [`fmt::Display`] instead; this is for tests and lookups.
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// True for variable nodes.
    pub fn is_var(&self) -> bool {
        matches!(self, NodeKind::Var { .. })
    }
}

/// Writes the node label (variable or register name) without allocating.
impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Var { name, .. } => fmt::Display::fmt(name, f),
            NodeKind::Reg { name } => fmt::Display::fmt(name, f),
        }
    }
}

/// The growable dependency graph: dense node table keyed by [`NodeIndex`],
/// edges in a deduplicating integer set. Node and edge counts are bounded
/// by the program's distinct names, not the trace length.
///
/// Edges run from *source* (parent) to *dependent* (child), matching the
/// paper's parent terminology in Algorithm 1. Freeze with
/// [`Graph::freeze`] before traversing.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    nodes: Vec<NodeKind>,
    index: NodeIndex,
    edges: FxHashSet<(u32, u32)>,
}

impl Graph {
    /// A fresh, empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Intern a node.
    pub fn node(&mut self, kind: NodeKind) -> usize {
        let (id, fresh) = match kind {
            NodeKind::Var { name, base } => self.index.var_node(name, base),
            NodeKind::Reg { name } => self.index.reg_node(name),
        };
        if fresh {
            self.nodes.push(kind);
        }
        id as usize
    }

    /// Intern a variable node.
    pub fn var_node(&mut self, name: SymId, base: u64) -> usize {
        self.node(NodeKind::Var { name, base })
    }

    /// Intern a register node.
    pub fn reg_node(&mut self, name: Name) -> usize {
        self.node(NodeKind::Reg { name })
    }

    /// Add a dependency edge `parent → child` (self-loops are ignored,
    /// duplicates deduplicate).
    pub fn add_edge(&mut self, parent: usize, child: usize) {
        if parent != child {
            self.edges.insert((parent as u32, child as u32));
        }
    }

    /// Node payloads, indexed by node id.
    pub fn nodes(&self) -> &[NodeKind] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Look a node up without interning.
    pub fn find(&self, kind: &NodeKind) -> Option<usize> {
        find_in(&self.index, kind)
    }

    /// Absorb another graph built over a **later shard of the same
    /// trace**: intern `other`'s nodes here in their local-id order and
    /// union the (remapped) edges.
    ///
    /// Determinism: both graphs were preloaded with the same node prefix,
    /// and `other`'s fresh nodes appear in its table in first-intern order
    /// — which, for iteration-aligned shards merged in shard order, *is*
    /// the order the serial run would have interned them. Re-interning in
    /// that order therefore reproduces the serial node numbering exactly,
    /// so frozen adjacency and DOT output stay byte-identical.
    pub fn absorb(&mut self, other: &Graph) {
        let mut remap = Vec::with_capacity(other.nodes.len());
        for kind in &other.nodes {
            remap.push(self.node(*kind) as u32);
        }
        for &(p, c) in &other.edges {
            self.add_edge(remap[p as usize] as usize, remap[c as usize] as usize);
        }
    }

    /// Compact into the immutable CSR form: adjacency in both directions,
    /// each slice sorted ascending. Consumes the graph — the node table
    /// and dense index move, so compaction allocates only the CSR arrays.
    pub fn freeze(self) -> CsrGraph {
        let n = self.nodes.len();
        let mut edges: Vec<(u32, u32)> = self.edges.into_iter().collect();

        edges.sort_unstable();
        let (child_off, child_dst) = csr(n, edges.iter().map(|&(p, c)| (p, c)));
        edges.sort_unstable_by_key(|&(p, c)| (c, p));
        let (parent_off, parent_dst) = csr(n, edges.iter().map(|&(p, c)| (c, p)));

        CsrGraph {
            nodes: self.nodes,
            index: self.index,
            child_off,
            child_dst,
            parent_off,
            parent_dst,
        }
    }
}

/// Build one CSR direction from edges pre-sorted by source id.
fn csr(n: usize, edges: impl Iterator<Item = (u32, u32)> + Clone) -> (Vec<u32>, Vec<u32>) {
    let mut off = vec![0u32; n + 1];
    for (src, _) in edges.clone() {
        off[src as usize + 1] += 1;
    }
    for i in 0..n {
        off[i + 1] += off[i];
    }
    let dst = edges.map(|(_, d)| d).collect();
    (off, dst)
}

fn find_in(index: &NodeIndex, kind: &NodeKind) -> Option<usize> {
    match *kind {
        NodeKind::Var { name, base } => index.find_var(name, base),
        NodeKind::Reg { name } => index.find_reg(name),
    }
    .map(|i| i as usize)
}

/// The frozen dependency graph: compressed sparse rows in both directions,
/// parent/child slices sorted ascending. This is what contraction
/// (Algorithm 1), DOT rendering, and every read-only consumer traverse.
#[derive(Clone, Debug, Default)]
pub struct CsrGraph {
    /// Node payloads, indexed by node id (first-intern order).
    pub nodes: Vec<NodeKind>,
    index: NodeIndex,
    child_off: Vec<u32>,
    child_dst: Vec<u32>,
    parent_off: Vec<u32>,
    parent_dst: Vec<u32>,
}

impl CsrGraph {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.child_dst.len()
    }

    /// Parents (sources) of `n`, ascending, as a contiguous slice.
    #[inline]
    pub fn parent_slice(&self, n: usize) -> &[u32] {
        &self.parent_dst[self.parent_off[n] as usize..self.parent_off[n + 1] as usize]
    }

    /// Children (dependents) of `n`, ascending, as a contiguous slice.
    #[inline]
    pub fn child_slice(&self, n: usize) -> &[u32] {
        &self.child_dst[self.child_off[n] as usize..self.child_off[n + 1] as usize]
    }

    /// Parents (sources) of `n`.
    pub fn parents_of(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        self.parent_slice(n).iter().map(|&p| p as usize)
    }

    /// Children (dependents) of `n`.
    pub fn children_of(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        self.child_slice(n).iter().map(|&c| c as usize)
    }

    /// Look a node up without interning.
    pub fn find(&self, kind: &NodeKind) -> Option<usize> {
        find_in(&self.index, kind)
    }

    /// Render as Graphviz DOT; `is_mli` marks MLI variable nodes.
    pub fn to_dot(&self, is_mli: impl Fn(&NodeKind) -> bool) -> String {
        let mut w = DotWriter::new("ddg", Some("TB"));
        for (i, n) in self.nodes.iter().enumerate() {
            let shape = if n.is_var() {
                if is_mli(n) {
                    "doublecircle"
                } else {
                    "ellipse"
                }
            } else {
                "box"
            };
            w.node(i, n, Some(shape));
        }
        for p in 0..self.nodes.len() {
            for &k in self.child_slice(p) {
                w.edge(p, k as usize);
            }
        }
        w.finish()
    }
}

/// The one Graphviz DOT serializer: both the full DDG and the contracted
/// DDG render through it (batch, `StreamAnalyzer`, and `MultiAnalyzer`
/// alike). Labels are written into the buffer via [`fmt::Display`] — no
/// per-node `String` allocation.
pub struct DotWriter {
    out: String,
}

impl DotWriter {
    /// Open `digraph <name>`, optionally with a `rankdir` attribute.
    pub fn new(name: &str, rankdir: Option<&str>) -> DotWriter {
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{");
        if let Some(dir) = rankdir {
            let _ = writeln!(out, "  rankdir={dir};");
        }
        DotWriter { out }
    }

    /// Emit node `id` with the given label and optional shape. The label
    /// is escaped for the quoted DOT string (`"` and `\`) — symbol names
    /// come from the trace, which may be third-party input.
    pub fn node(&mut self, id: usize, label: &dyn fmt::Display, shape: Option<&str>) {
        let label = EscapeDot(label);
        match shape {
            Some(shape) => {
                let _ = writeln!(self.out, "  n{id} [label=\"{label}\", shape={shape}];");
            }
            None => {
                let _ = writeln!(self.out, "  n{id} [label=\"{label}\"];");
            }
        }
    }

    /// Emit edge `parent → child`.
    pub fn edge(&mut self, parent: usize, child: usize) {
        let _ = writeln!(self.out, "  n{parent} -> n{child};");
    }

    /// Close the graph and hand back the buffer.
    pub fn finish(mut self) -> String {
        self.out.push_str("}\n");
        self.out
    }
}

/// Display adapter escaping `"` and `\` for a quoted DOT string, still
/// allocation-free (escapes stream through the formatter).
struct EscapeDot<'a>(&'a dyn fmt::Display);

impl fmt::Display for EscapeDot<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        struct Escaper<'a, 'b>(&'a mut fmt::Formatter<'b>);
        impl fmt::Write for Escaper<'_, '_> {
            fn write_str(&mut self, s: &str) -> fmt::Result {
                for chunk in s.split_inclusive(['"', '\\']) {
                    match chunk.as_bytes().last() {
                        Some(b'"') => {
                            self.0.write_str(&chunk[..chunk.len() - 1])?;
                            self.0.write_str("\\\"")?;
                        }
                        Some(b'\\') => {
                            self.0.write_str(&chunk[..chunk.len() - 1])?;
                            self.0.write_str("\\\\")?;
                        }
                        _ => self.0.write_str(chunk)?,
                    }
                }
                Ok(())
            }
        }
        write!(Escaper(f), "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // a → t1 → b, a → t2 → b
        let mut g = Graph::new();
        let a = g.var_node(SymId::intern("graph_a"), 0x100);
        let b = g.var_node(SymId::intern("graph_b"), 0x200);
        let t1 = g.reg_node(Name::Temp(1));
        let t2 = g.reg_node(Name::Temp(2));
        g.add_edge(a, t1);
        g.add_edge(a, t2);
        g.add_edge(t1, b);
        g.add_edge(t2, b);
        g
    }

    #[test]
    fn ids_are_dense_in_intern_order_and_duplicates_dedup() {
        let mut g = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 4);
        // Re-interning and re-adding changes nothing.
        let a = g.var_node(SymId::intern("graph_a"), 0x100);
        assert_eq!(a, 0);
        g.add_edge(0, 2);
        g.add_edge(0, 0); // self-loop ignored
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn freeze_produces_sorted_adjacency_in_both_directions() {
        let g = diamond();
        let f = g.freeze();
        assert_eq!(f.len(), 4);
        assert_eq!(f.edge_count(), 4);
        assert_eq!(f.child_slice(0), &[2, 3], "a's children ascending");
        assert_eq!(f.parent_slice(1), &[2, 3], "b's parents ascending");
        assert_eq!(f.parent_slice(0), &[0u32; 0], "a is terminal");
        assert_eq!(f.children_of(2).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn find_works_on_both_forms() {
        let g = diamond();
        let key = NodeKind::Var {
            name: SymId::intern("graph_b"),
            base: 0x200,
        };
        let missing = NodeKind::Var {
            name: SymId::intern("graph_b"),
            base: 0x999,
        };
        assert_eq!(g.find(&key), Some(1));
        assert_eq!(g.find(&missing), None);
        let f = g.freeze();
        assert_eq!(f.find(&key), Some(1));
        assert_eq!(f.find(&missing), None);
    }

    #[test]
    fn dot_writer_reproduces_both_historical_formats() {
        let mut full = DotWriter::new("ddg", Some("TB"));
        full.node(0, &"sum", Some("ellipse"));
        full.edge(0, 1);
        assert_eq!(
            full.finish(),
            "digraph ddg {\n  rankdir=TB;\n  n0 [label=\"sum\", shape=ellipse];\n  n0 -> n1;\n}\n"
        );
        let mut contracted = DotWriter::new("contracted", None);
        contracted.node(0, &"a", None);
        assert_eq!(
            contracted.finish(),
            "digraph contracted {\n  n0 [label=\"a\"];\n}\n"
        );
    }

    #[test]
    fn dot_labels_escape_quotes_and_backslashes() {
        let mut w = DotWriter::new("g", None);
        w.node(0, &r#"a"b\c"#, None);
        w.node(1, &"plain", None);
        assert_eq!(
            w.finish(),
            "digraph g {\n  n0 [label=\"a\\\"b\\\\c\"];\n  n1 [label=\"plain\"];\n}\n"
        );
    }

    #[test]
    fn csr_dot_marks_shapes_per_node_kind() {
        let g = diamond();
        let dot = g
            .freeze()
            .to_dot(|n| matches!(n, NodeKind::Var { name, .. } if name.as_str() == "graph_a"));
        assert!(dot.contains("doublecircle"), "MLI var: {dot}");
        assert!(dot.contains("ellipse"), "plain var");
        assert!(dot.contains("box"), "register");
        assert!(dot.starts_with("digraph ddg {\n  rankdir=TB;\n"));
    }

    #[test]
    fn empty_graph_freezes() {
        let f = Graph::new().freeze();
        assert!(f.is_empty());
        assert_eq!(f.edge_count(), 0);
        assert_eq!(f.to_dot(|_| false), "digraph ddg {\n  rankdir=TB;\n}\n");
    }
}
