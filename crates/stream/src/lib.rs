//! Online AutoCheck analysis — the streaming counterpart of the batch
//! pipeline in `autocheck-core`.
//!
//! The batch pipeline materializes the entire dynamic trace (as a file,
//! then as a `Vec<Record>`), walks it three times (region partitioning, MLI
//! identification, dependency analysis), and only then classifies. Dynamic
//! traces grow to GBs, so that design's peak memory is O(trace). This crate
//! inverts the control flow: records are consumed **one at a time**, all
//! analysis state machines advance **in a single pass**, and per-iteration
//! classification state is **retired at iteration boundaries** — peak
//! memory is O(live window): the distinct variables/registers of the
//! program plus the elements touched by the current loop iteration, never
//! the trace length.
//!
//! The crate sits *below* `autocheck-core` in the dependency graph (it
//! depends only on `autocheck-trace`), so `autocheck-core` can offer a
//! `StreamAnalyzer` front door that assembles these state machines into a
//! drop-in replacement for its batch `Analyzer`. The pieces:
//!
//! * [`region::RegionTracker`] — incremental trace partitioning: phase
//!   (before/inside/after the main loop), iteration number, and
//!   region-level discrimination per record, with the one-record call
//!   lookahead of the batch implementation replaced by a deferred
//!   stack operation;
//! * [`mli::MliCollector`] — incremental Main-Loop-Input identification
//!   (collect part-A and part-B occurrences as they fly past, match at
//!   finish);
//! * [`graph`] — the shared dependency-graph core: the growable
//!   [`graph::Graph`], its frozen CSR form [`graph::CsrGraph`]
//!   (sorted parent/child slices, the substrate for Algorithm 1
//!   contraction), and the one DOT writer;
//! * [`ddg::DdgBuilder`] — the **single** DDG construction: incremental
//!   reg-var/reg-reg maps over [`graph::Graph`], emitting one read/write
//!   [`ddg::AccessEvent`] per memory access instead of accumulating an
//!   O(trace) event vector; the batch pipeline folds its record slice
//!   through this same builder;
//! * [`stats::VarStatsBuilder`] — folds a variable's access events into the
//!   bounded [`stats::VarStats`] summary the classification heuristics
//!   need, retiring the per-iteration element window at each iteration
//!   boundary;
//! * [`engine::Engine`] — glues the four together, tracks the live-record
//!   window (observable, and optionally bounded by
//!   [`engine::EngineConfig::max_live_records`]).
//!
//! Classification *decisions* (WAR / RAPO / Outcome / Index and the skip
//! reasons) deliberately do **not** live here: `autocheck-core` makes them
//! from [`stats::VarStats`] through one shared function, so the batch and
//! streaming paths cannot drift apart.

pub mod ddg;
pub mod engine;
pub mod graph;
pub mod mli;
pub mod prov;
pub mod region;
pub mod shard;
pub mod stats;

pub use ddg::{AccessEvent, DdgBuilder};
pub use engine::{
    Engine, EngineConfig, EngineError, EngineOutcome, EngineShardState, LiveBoundExceeded,
};
pub use graph::{CsrGraph, DotWriter, Graph, NodeKind};
pub use mli::{Collect, MliCollector, MliEntry};
pub use prov::{relevant_opcode, resolve_alias, Provenance};
pub use region::{Phase, RegionTracker, StreamAnnot};
pub use shard::{
    boundaries_from_annots, fold_ddg_sharded, fold_mli_sharded, iteration_boundaries,
    merge_shard_states, merge_var_stats, run_planned, run_sharded,
};
pub use stats::{VarStats, VarStatsBuilder};
// The dense node-id interner moved next to `NameMap` in `autocheck-trace`;
// re-exported here for continuity.
pub use autocheck_trace::NodeIndex;
