//! Incremental Main-Loop-Input identification.
//!
//! The streaming port of `autocheck_core::preprocess::find_mli_vars`: the
//! batch function's single forward pass becomes [`MliCollector::observe`],
//! and its final part-A/part-B matching becomes [`MliCollector::finish`].
//! All state is keyed by variable/register *names and base addresses*, so
//! it is bounded by the program (distinct variables), not the trace.
//!
//! The collection rules are the paper's §IV-A / §V-B verbatim (and
//! byte-identical to the batch implementation): pointer provenance chased
//! through `GetElementPtr`/`BitCast`, function-call intervals bypassed
//! (Challenge 1) except for address matches against part-A variables
//! (Challenge 2), and two occurrence-strictness modes.

use crate::prov::Provenance;
use crate::region::{Phase, StreamAnnot};
use autocheck_trace::{record::opcodes, AnalysisCtx, Name, NameMap, NameSet, Record, SymId};
use fxhash::FxSeededHashMap;

/// Occurrence-counting strictness. Mirrors
/// `autocheck_core::CollectMode`; redeclared here so this crate stays below
/// `autocheck-core` in the dependency graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Collect {
    /// Count every resolved load/store (the batch default).
    #[default]
    AnyAccess,
    /// Count only arithmetic participation (the ablation mode).
    Arithmetic,
}

/// One identified main-loop-input variable (`autocheck_core::MliVar` is an
/// alias of this type, so the batch and streaming pipelines share it).
#[derive(Clone, Debug, PartialEq)]
pub struct MliEntry {
    /// Source-level name (interned).
    pub name: SymId,
    /// Base address of its storage.
    pub base_addr: u64,
    /// Observed storage footprint in bytes.
    pub size: u64,
    /// First source line where the variable was seen used before the loop.
    pub first_line: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct VarKey {
    name: SymId,
    base: u64,
}

/// Incremental MLI collector. Feed every record (with its annotation) in
/// execution order, then [`finish`](MliCollector::finish).
pub struct MliCollector {
    mode: Collect,
    prov: Provenance,
    arith_regs: NameSet,
    loaded_from: NameMap<VarKey>,
    // Keys carry trace-supplied *base addresses* ([`VarKey`] / `u64`), so
    // these maps hash with the session's address seed — deterministic Fx
    // for trusted sources, per-session seeding for `--untrusted-trace`.
    before: FxSeededHashMap<VarKey, u32>,
    inside: FxSeededHashMap<VarKey, u32>,
    extent: FxSeededHashMap<VarKey, u64>,
    alloca_size: FxSeededHashMap<VarKey, u64>,
    before_by_base: FxSeededHashMap<u64, VarKey>,
}

impl MliCollector {
    /// A fresh collector scoped to the thread's current session (address
    /// maps deterministic unless that session is untrusted).
    pub fn new(mode: Collect) -> MliCollector {
        Self::with_ctx(mode, &AnalysisCtx::current())
    }

    /// A collector whose address-keyed maps hash with `ctx`'s session seed.
    pub fn with_ctx(mode: Collect, ctx: &AnalysisCtx) -> MliCollector {
        MliCollector {
            mode,
            prov: Provenance::default(),
            arith_regs: NameSet::new(),
            loaded_from: NameMap::new(),
            before: ctx.addr_map(),
            inside: ctx.addr_map(),
            extent: ctx.addr_map(),
            alloca_size: ctx.addr_map(),
            before_by_base: ctx.addr_map(),
        }
    }

    /// Number of distinct variables currently tracked (a bounded-state
    /// observability hook).
    pub fn tracked_vars(&self) -> usize {
        self.before.len() + self.inside.len()
    }

    fn collect<const FULL: bool>(&mut self, key: VarKey, line: u32, is_before: bool) {
        if is_before {
            self.before_by_base.entry(key.base).or_insert(key);
            self.before.entry(key).or_insert(line);
        } else if FULL {
            self.inside.entry(key).or_insert(line);
        }
    }

    /// Advance the collector over one record.
    pub fn observe(&mut self, r: &Record, a: StreamAnnot) {
        self.observe_impl::<true>(r, a)
    }

    /// Advance the collector in **replay mode**: maintain the resolution
    /// state a later record depends on (pointer provenance, the part-A
    /// `before` maps, arithmetic-register and loaded-from tracking) without
    /// contributing any in-loop evidence (`inside`, `extent`,
    /// `alloca_size`). A sharded worker fast-forwards through the records
    /// preceding its shard this way, so its collector starts from exactly
    /// the serial state while attributing findings only to its own range.
    pub fn observe_replay(&mut self, r: &Record, a: StreamAnnot) {
        self.observe_impl::<false>(r, a)
    }

    fn observe_impl<const FULL: bool>(&mut self, r: &Record, a: StreamAnnot) {
        self.prov.observe(r);
        if !a.region_level {
            // Challenge 1: bypass function-call intervals — no *new*
            // candidates here, but an address match against a part-A
            // variable still counts as an in-loop use.
            if FULL
                && a.phase == Phase::Inside
                && matches!(r.opcode, opcodes::LOAD | opcodes::STORE)
            {
                let ptr = if r.opcode == opcodes::LOAD {
                    r.op1()
                } else {
                    r.op2()
                };
                if let Some(ptr) = ptr {
                    if let Some((_, base)) = self.prov.resolve(ptr.name, ptr.value.as_ptr()) {
                        if let Some(&key) = self.before_by_base.get(&base) {
                            let line = if r.src_line > 0 { r.src_line as u32 } else { 0 };
                            self.inside.entry(key).or_insert(line);
                        }
                    }
                }
            }
            return;
        }
        let is_before = match a.phase {
            Phase::Before => true,
            Phase::Inside => false,
            Phase::After => return,
        };
        let line = if r.src_line > 0 { r.src_line as u32 } else { 0 };
        match r.opcode {
            opcodes::ALLOCA => {
                if !FULL {
                    return;
                }
                if let (Some(size), Some(res)) =
                    (r.op1().and_then(|o| o.value.as_int()), r.result.as_ref())
                {
                    if let (Name::Sym(name), Some(addr)) = (res.name, res.value.as_ptr()) {
                        self.alloca_size
                            .insert(VarKey { name, base: addr }, size as u64);
                    }
                }
            }
            opcodes::LOAD => {
                let Some(ptr) = r.op1() else { return };
                let Some((name, base)) = self.prov.resolve(ptr.name, ptr.value.as_ptr()) else {
                    return;
                };
                let key = VarKey { name, base };
                if FULL {
                    if let Some(elem) = ptr.value.as_ptr() {
                        let e = self.extent.entry(key).or_insert(8);
                        *e = (*e).max(elem.saturating_sub(base) + 8);
                    }
                }
                match self.mode {
                    Collect::AnyAccess => {
                        self.collect::<FULL>(key, line, is_before);
                    }
                    Collect::Arithmetic => {
                        // Defer: collected only when the loaded temp feeds
                        // an arithmetic instruction.
                        if let Some(res) = &r.result {
                            self.loaded_from.insert(res.name, key);
                        }
                        return;
                    }
                }
                if let Some(res) = &r.result {
                    self.loaded_from.insert(res.name, key);
                }
            }
            opcodes::STORE => {
                let Some(ptr) = r.op2() else { return };
                let Some((name, base)) = self.prov.resolve(ptr.name, ptr.value.as_ptr()) else {
                    return;
                };
                let key = VarKey { name, base };
                if FULL {
                    if let Some(elem) = ptr.value.as_ptr() {
                        let e = self.extent.entry(key).or_insert(8);
                        *e = (*e).max(elem.saturating_sub(base) + 8);
                    }
                }
                let collect = match self.mode {
                    Collect::AnyAccess => true,
                    Collect::Arithmetic => r
                        .op1()
                        .map(|v| self.arith_regs.contains(v.name))
                        .unwrap_or(false),
                };
                if collect {
                    self.collect::<FULL>(key, line, is_before);
                }
            }
            op if (8..=25).contains(&op) || op == opcodes::ICMP || op == opcodes::FCMP => {
                if self.mode == Collect::Arithmetic {
                    let hits: Vec<VarKey> = r
                        .positional()
                        .filter_map(|operand| self.loaded_from.get(operand.name).copied())
                        .collect();
                    for key in hits {
                        self.collect::<FULL>(key, line, is_before);
                    }
                }
                if let Some(res) = &r.result {
                    self.arith_regs.insert(res.name);
                }
            }
            _ => {}
        }
    }

    /// Fold a **later shard's** collector into this one. Merged in shard
    /// (= trace) order, the result matches the serial collector exactly:
    ///
    /// * `inside` keeps the *first* line collected (serial `or_insert`
    ///   semantics — the earlier shard saw the earlier record);
    /// * `extent` takes the per-key maximum (serial folds with `max`);
    /// * `alloca_size` lets the later shard win (serial plain-insert
    ///   semantics — a re-allocation overwrites);
    /// * the part-A maps (`before`/`before_by_base`) are identical on both
    ///   sides by construction — every worker covers the complete
    ///   before-loop phase (shard 0 in full mode, the rest in replay) — so
    ///   this collector's copies stand.
    pub fn absorb(&mut self, other: MliCollector) {
        for (key, line) in other.inside {
            self.inside.entry(key).or_insert(line);
        }
        for (key, extent) in other.extent {
            let e = self.extent.entry(key).or_insert(extent);
            *e = (*e).max(extent);
        }
        for (key, size) in other.alloca_size {
            self.alloca_size.insert(key, size);
        }
    }

    /// Match the part-A collection against part-B and return the MLI set,
    /// sorted exactly like the batch implementation.
    pub fn finish(self) -> Vec<MliEntry> {
        let mut out: Vec<MliEntry> = Vec::new();
        for (key, first_line_before) in &self.before {
            if self.inside.contains_key(key) {
                let size = self
                    .alloca_size
                    .get(key)
                    .copied()
                    .or_else(|| self.extent.get(key).copied())
                    .unwrap_or(8);
                out.push(MliEntry {
                    name: key.name,
                    base_addr: key.base,
                    size,
                    first_line: *first_line_before,
                });
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name).then(a.base_addr.cmp(&b.base_addr)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionTracker;
    fn parse_str(
        text: &str,
    ) -> Result<Vec<autocheck_trace::Record>, autocheck_trace::reader::TraceReadError> {
        autocheck_trace::TraceSource::from_str(text).records()
    }

    fn collect_over(text: &str, mode: Collect) -> Vec<MliEntry> {
        let recs = parse_str(text).unwrap();
        let mut tracker = RegionTracker::new("main", 5, 7);
        let mut mli = MliCollector::new(mode);
        for r in &recs {
            let a = tracker.annotate(r);
            mli.observe(r, a);
        }
        mli.finish()
    }

    /// The batch preprocess toy: sum stored before and used inside → MLI;
    /// x only before, tmp only inside.
    const TOY: &str = "\
0,-1,main,0:0,sum,26,0,
1,64,8,0,,
r,64,0x7f0000000000,1,sum,
0,-1,main,0:0,x,26,1,
1,64,8,0,,
r,64,0x7f0000000008,1,x,
0,-1,main,0:0,tmp,26,2,
1,64,8,0,,
r,64,0x7f0000000010,1,tmp,
0,2,main,2:1,0,28,3,
1,64,0,0,,
2,64,0x7f0000000000,1,sum,
0,2,main,2:1,0,28,4,
1,64,5,0,,
2,64,0x7f0000000008,1,x,
0,5,main,5:1,1,27,5,
1,64,0x7f0000000000,1,sum,
r,64,0,1,0,
0,5,main,5:1,1,2,6,
1,1,1,1,9,
0,6,main,6:1,2,27,7,
1,64,0x7f0000000000,1,sum,
r,64,0,1,1,
0,6,main,6:1,2,8,8,
1,64,0,1,1,
2,64,1,0,,
r,64,1,1,2,
0,6,main,6:1,2,28,9,
1,64,1,1,2,
2,64,0x7f0000000000,1,sum,
0,7,main,7:1,2,28,10,
1,64,3,0,,
2,64,0x7f0000000010,1,tmp,
0,5,main,5:1,1,27,11,
1,64,0x7f0000000000,1,sum,
r,64,1,1,3,
0,5,main,5:1,1,2,12,
1,1,0,1,9,
0,9,main,9:1,3,27,13,
1,64,0x7f0000000000,1,sum,
r,64,1,1,4,
";

    #[test]
    fn matches_variables_defined_before_and_used_inside() {
        let mli = collect_over(TOY, Collect::AnyAccess);
        let names: Vec<_> = mli.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["sum"]);
        assert_eq!(mli[0].base_addr, 0x7f00_0000_0000);
        assert_eq!(mli[0].size, 8);
    }

    #[test]
    fn arithmetic_mode_rejects_constant_pre_loop_stores() {
        assert!(collect_over(TOY, Collect::Arithmetic).is_empty());
    }

    #[test]
    fn same_name_different_address_does_not_match() {
        let text = "\
0,2,main,2:1,0,28,0,
1,64,1,0,,
2,64,0x7f0000000000,1,v,
0,5,main,5:1,1,27,1,
1,64,0x7f0000000100,1,v,
r,64,0,1,0,
0,5,main,5:1,1,2,2,
1,1,0,1,9,
";
        assert!(collect_over(text, Collect::AnyAccess).is_empty());
    }

    #[test]
    fn gep_provenance_resolves_array_elements() {
        let text = "\
0,-1,main,0:0,a,26,0,
1,64,16,0,,
r,64,0x7f0000000000,1,a,
0,2,main,2:1,0,29,1,
1,64,0x7f0000000000,1,a,
2,64,1,0,,
r,64,0x7f0000000008,1,0,
0,2,main,2:1,0,28,2,
1,64,7,0,,
2,64,0x7f0000000008,1,0,
0,5,main,5:1,1,27,3,
1,64,0x7f0000000000,1,a,
r,64,0,1,1,
0,5,main,5:1,1,2,4,
1,1,1,1,9,
0,6,main,6:1,2,29,5,
1,64,0x7f0000000000,1,a,
2,64,0,0,,
r,64,0x7f0000000000,1,2,
0,6,main,6:1,2,28,6,
1,64,9,0,,
2,64,0x7f0000000000,1,2,
0,5,main,5:1,1,27,7,
1,64,0x7f0000000000,1,a,
r,64,0,1,3,
0,5,main,5:1,1,2,8,
1,1,0,1,9,
";
        let mli = collect_over(text, Collect::AnyAccess);
        assert_eq!(mli.len(), 1);
        assert_eq!(mli[0].name.as_str(), "a");
        assert_eq!(mli[0].size, 16, "alloca size wins over extent");
    }
}
