//! Sharded single-trace analysis: replay-based fan-out plus a
//! deterministic state merge.
//!
//! The paper parallelizes across *many* traces; this module parallelizes
//! **one** trace. The trace is cut into iteration-aligned ranges by
//! `autocheck_trace::plan_shards` (no loop iteration ever straddles two
//! workers — the per-variable statistics fold retires its element window
//! exactly at iteration boundaries, so a mid-iteration cut would change
//! results). Worker `k` then:
//!
//! 1. **replays** records `0..start_k` through [`Engine::push_replay`] —
//!    the region tracker plus the cheap binding/provenance state of the
//!    MLI collector and DDG builder advance, nothing is recorded — so at
//!    `start_k` the worker observes the trace exactly as a serial engine
//!    would;
//! 2. runs **full analysis** over `start_k..end_k` via [`Engine::push`].
//!
//! Replay is a prefix-sum-style recomputation trade: total work grows from
//! `O(n)` to `O(n·(1 + (N-1)/2 · replay_cost/full_cost))`, but the
//! *full-analysis* work — graph construction, statistics folding, window
//! accounting, the expensive part — is an even `1/N` split per worker.
//!
//! [`merge_shard_states`] folds the partial states back together **in
//! shard order**, which makes the result byte-identical to a serial run:
//!
//! * DDG: [`crate::graph::Graph::absorb`] re-interns each shard's fresh
//!   nodes in shard order, reproducing the serial first-intern numbering
//!   (worker 0 ran full from record 0, and within any later shard the
//!   fresh-node order equals the serial order over that range) — full
//!   *and* contracted DOT bytes match;
//! * MLI: every worker observed the whole Before phase (replay keeps
//!   part-A occurrence state), so the before-maps agree; Inside
//!   first-occurrence lines merge first-wins in shard order, extents by
//!   max;
//! * statistics: per-iteration windows are shard-local by construction;
//!   the boolean flags OR together, and the one cross-shard interaction —
//!   `multi_elem` when two shards each saw a single but *different*
//!   element — is recovered from each builder's first observed element.
//!
//! Caveats, both documented and deliberate: per-shard live-window bounds
//! are weaker than the serial bound (each worker counts only its own
//! windows), and session DDG ceilings are enforced on the *merged* graph
//! at merge time rather than mid-push. A hostile trace is still stopped
//! with the same typed errors; it may just get further before the stop.
//!
//! The batch pipeline reuses the same machinery through
//! [`fold_mli_sharded`] / [`fold_ddg_sharded`], which run over its
//! precomputed annotation vector (and preload MLI variable nodes into
//! every worker's graph, keeping the batch DOT numbering).

use crate::ddg::DdgBuilder;
use crate::engine::{Engine, EngineConfig, EngineError, EngineOutcome, EngineShardState};
use crate::mli::{Collect, MliCollector};
use crate::region::{Phase, RegionTracker, StreamAnnot};
use crate::stats::{VarStats, VarStatsBuilder};
use autocheck_obs::{CounterId, GaugeId, TimerId};
use autocheck_trace::{plan_shards, AnalysisCtx, Record, ResourceExceeded, ResourceKind, SymId};
use fxhash::{FxSeededHashMap, FxSeededState};
use std::collections::hash_map::Entry;
use std::convert::Infallible;
use std::ops::Range;

/// Record indices at which a new loop iteration starts, read off an
/// existing annotation vector (the batch pipeline's `Phases`).
pub fn boundaries_from_annots(annots: &[StreamAnnot]) -> Vec<u64> {
    let mut bounds = Vec::new();
    let mut last = 0u32;
    for (i, a) in annots.iter().enumerate() {
        if a.iter != last {
            bounds.push(i as u64);
            last = a.iter;
        }
    }
    bounds
}

/// Record indices at which a new loop iteration starts, computed by one
/// cheap region-tracker scan (text traces, or binary files written
/// without an iteration-index footer).
pub fn iteration_boundaries(records: &[Record], cfg: &EngineConfig, ctx: &AnalysisCtx) -> Vec<u64> {
    let mut tracker = RegionTracker::with_ctx(ctx, &cfg.function, cfg.start_line, cfg.end_line);
    let mut bounds = Vec::new();
    let mut last = 0u32;
    for (i, r) in records.iter().enumerate() {
        let a = tracker.annotate(r);
        if a.iter != last {
            bounds.push(i as u64);
            last = a.iter;
        }
    }
    bounds
}

/// Fan the plan out over scoped threads: worker `k` consumes `workers[k]`
/// and its plan range. Workers are constructed by the *caller* on the
/// parent thread — they never intern symbols, so no worker ever touches
/// the shared symbol space. Results come back in shard order; on failure
/// the lowest-index shard's error wins (it is the error a serial run
/// would have hit first).
fn scatter<W, T, E>(
    plan: &[Range<usize>],
    workers: Vec<W>,
    work: impl Fn(W, Range<usize>) -> Result<T, E> + Sync,
) -> Result<Vec<T>, E>
where
    W: Send,
    T: Send,
    E: Send,
{
    debug_assert_eq!(plan.len(), workers.len());
    std::thread::scope(|s| {
        let work = &work;
        let handles: Vec<_> = plan
            .iter()
            .cloned()
            .zip(workers)
            .map(|(range, w)| s.spawn(move || work(w, range)))
            .collect();
        let mut out = Vec::with_capacity(handles.len());
        let mut first_err = None;
        for h in handles {
            match h.join().expect("shard worker panicked") {
                Ok(t) => out.push(t),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            None => Ok(out),
            Some(e) => Err(e),
        }
    })
}

/// Run `records` through up to `shards` workers and merge to an
/// [`EngineOutcome`] byte-identical to a serial [`Engine`] run.
///
/// `boundaries` are iteration-start record indices when already known
/// (the binary format's index footer); `None` runs one region-tracker
/// scan. A plan that degenerates to one shard (tiny traces, fewer
/// iterations than workers, `shards <= 1`) falls back to the plain serial
/// loop — zero sharding overhead.
pub fn run_sharded(
    cfg: &EngineConfig,
    ctx: &AnalysisCtx,
    records: &[Record],
    boundaries: Option<&[u64]>,
    shards: usize,
) -> Result<EngineOutcome, EngineError> {
    let scanned;
    let bounds: &[u64] = match boundaries {
        Some(b) => b,
        None if shards <= 1 => &[],
        None => {
            scanned = iteration_boundaries(records, cfg, ctx);
            &scanned
        }
    };
    let plan = plan_shards(records.len(), bounds, shards);
    run_planned(cfg, ctx, records, &plan)
}

/// [`run_sharded`] over an explicit, already-validated plan.
pub fn run_planned(
    cfg: &EngineConfig,
    ctx: &AnalysisCtx,
    records: &[Record],
    plan: &[Range<usize>],
) -> Result<EngineOutcome, EngineError> {
    if plan.len() <= 1 {
        let mut engine = Engine::with_ctx(cfg.clone(), ctx);
        for r in records {
            engine.push(r)?;
        }
        return Ok(engine.finish());
    }
    let metrics = ctx.metrics().clone();
    let engines: Vec<Engine> = plan
        .iter()
        .map(|_| Engine::with_ctx(cfg.clone(), ctx))
        .collect();
    let states = scatter(plan, engines, |mut engine, range| {
        let t = metrics.timed(TimerId::ShardWall);
        for r in &records[..range.start] {
            engine.push_replay(r);
        }
        let mut pushed = 0u64;
        let mut failed = None;
        for r in &records[range] {
            match engine.push(r) {
                Ok(()) => pushed += 1,
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        metrics.count(CounterId::ShardRecords, pushed);
        let _ = t.finish();
        match failed {
            None => Ok(engine.into_shard_state()),
            Some(e) => Err(e),
        }
    })?;
    merge_shard_states(states, ctx)
}

/// Fold per-shard partial states (in shard order) into one
/// [`EngineOutcome`], flushing the run's totals to the session metrics
/// exactly once — the sharded counterpart of [`Engine::finish`]. Session
/// DDG ceilings are enforced here on the merged graph (each worker only
/// saw its own part).
pub fn merge_shard_states(
    states: Vec<EngineShardState>,
    ctx: &AnalysisCtx,
) -> Result<EngineOutcome, EngineError> {
    let metrics = ctx.metrics().clone();
    let t = metrics.timed(TimerId::ShardMerge);
    let mut states = states.into_iter();
    let first = states.next().expect("merge requires at least one shard");
    let mut mli = first.mli;
    let mut ddg = first.ddg;
    let mut records = first.records;
    let mut access_events = first.access_events;
    // The last shard's tracker annotated the whole trace (earlier ranges
    // in replay), so its region totals are the serial totals.
    let mut iterations = first.iterations;
    let mut header_label = first.header_label;
    let mut peak_live = first.live.peak();
    let mut stats_parts = vec![first.stats];
    let mut live_gauges = vec![first.live];
    for st in states {
        mli.absorb(st.mli);
        ddg.absorb(&st.ddg);
        records += st.records;
        access_events += st.access_events;
        iterations = st.iterations;
        header_label = st.header_label;
        peak_live = peak_live.max(st.live.peak());
        stats_parts.push(st.stats);
        live_gauges.push(st.live);
    }
    if let Some(limit) = ctx.limits().get(ResourceKind::DdgNodes) {
        let used = ddg.graph().len() as u64;
        if used > limit {
            metrics.count(CounterId::LimitExceeded, 1);
            return Err(ResourceExceeded {
                kind: ResourceKind::DdgNodes,
                used,
                limit,
            }
            .into());
        }
    }
    if let Some(limit) = ctx.limits().get(ResourceKind::DdgEdges) {
        let used = ddg.graph().edge_count() as u64;
        if used > limit {
            metrics.count(CounterId::LimitExceeded, 1);
            return Err(ResourceExceeded {
                kind: ResourceKind::DdgEdges,
                used,
                limit,
            }
            .into());
        }
    }
    let mli = mli.finish();
    let stats = merge_var_stats(stats_parts, ctx);
    let ddg = ddg.finish();
    if metrics.is_enabled() {
        metrics.count(CounterId::EngineRecords, records);
        metrics.count(CounterId::AccessEvents, access_events);
        metrics.gauge_set(GaugeId::Iterations, iterations as u64);
        for g in &live_gauges {
            metrics.gauge_merge(GaugeId::LiveRecords, g);
        }
        metrics.gauge_set(GaugeId::DdgNodes, ddg.len() as u64);
        metrics.gauge_set(GaugeId::DdgEdges, ddg.edge_count() as u64);
    }
    let _ = t.finish();
    Ok(EngineOutcome {
        mli,
        stats,
        iterations,
        records,
        peak_live_records: peak_live as usize,
        header_label,
        ddg,
    })
}

/// Merge per-shard `(base, stats, first_elem)` lists — in shard order —
/// into one per-base statistics map (hashed with the session's address
/// seed). Boolean flags OR together; `multi_elem` additionally trips when
/// two shards anchored on *different* first elements, the one footprint
/// signal a single shard cannot see.
pub fn merge_var_stats(
    parts: Vec<Vec<(u64, VarStats, Option<u64>)>>,
    ctx: &AnalysisCtx,
) -> FxSeededHashMap<u64, VarStats> {
    let mut acc: FxSeededHashMap<u64, (VarStats, Option<u64>)> = ctx.addr_map();
    for part in parts {
        for (base, s, fe) in part {
            match acc.entry(base) {
                Entry::Vacant(v) => {
                    v.insert((s, fe));
                }
                Entry::Occupied(mut o) => {
                    let (a, first_fe) = o.get_mut();
                    a.written_in_loop |= s.written_in_loop;
                    a.read_in_loop |= s.read_in_loop;
                    a.read_after_loop |= s.read_after_loop;
                    a.carried |= s.carried;
                    a.stale_read |= s.stale_read;
                    a.multi_elem |= s.multi_elem;
                    match (*first_fe, fe) {
                        (Some(x), Some(y)) if x != y => a.multi_elem = true,
                        (None, Some(y)) => *first_fe = Some(y),
                        _ => {}
                    }
                }
            }
        }
    }
    let mut out = ctx.addr_map();
    out.extend(acc.into_iter().map(|(b, (s, _))| (b, s)));
    out
}

/// The batch pipeline's sharded MLI fold: one collector per shard over
/// the precomputed annotation vector, merged in shard order. Returned
/// *unfinished* so the caller matches occurrences exactly like the serial
/// `find_mli_vars` fold.
pub fn fold_mli_sharded(
    records: &[Record],
    annots: &[StreamAnnot],
    plan: &[Range<usize>],
    collect: Collect,
    ctx: &AnalysisCtx,
) -> MliCollector {
    assert_eq!(
        records.len(),
        annots.len(),
        "records and annotations must be parallel"
    );
    let workers: Vec<MliCollector> = plan
        .iter()
        .map(|_| MliCollector::with_ctx(collect, ctx))
        .collect();
    let parts = scatter(plan, workers, |mut mli, range| {
        for i in 0..range.start {
            mli.observe_replay(&records[i], annots[i]);
        }
        for i in range {
            mli.observe(&records[i], annots[i]);
        }
        Ok::<_, Infallible>(mli)
    })
    .unwrap_or_else(|e| match e {});
    let mut parts = parts.into_iter();
    let mut merged = parts.next().expect("at least one shard");
    for part in parts {
        merged.absorb(part);
    }
    merged
}

/// The batch pipeline's sharded dependency fold: per-shard DDG builders —
/// each preloaded with the MLI variable nodes, so the merged graph keeps
/// the batch DOT numbering — with every worker folding its access events
/// (filtered to MLI bases, exactly like the serial fold's event stream)
/// straight into per-variable statistics. Returns the merged, unfrozen
/// builder plus the merged statistics map.
pub fn fold_ddg_sharded(
    records: &[Record],
    annots: &[StreamAnnot],
    plan: &[Range<usize>],
    selective: bool,
    on_the_fly_reg_var: bool,
    preload: &[(SymId, u64)],
    ctx: &AnalysisCtx,
) -> (DdgBuilder, FxSeededHashMap<u64, VarStats>) {
    assert_eq!(
        records.len(),
        annots.len(),
        "records and annotations must be parallel"
    );
    let addr_seed = ctx.addr_seed();
    let mut mli_bases = ctx.addr_map::<u64, ()>();
    mli_bases.extend(preload.iter().map(|&(_, b)| (b, ())));
    let mli_bases = &mli_bases;
    let workers: Vec<DdgBuilder> = plan
        .iter()
        .map(|_| {
            let mut b = DdgBuilder::new(selective).with_reg_var_on_the_fly(on_the_fly_reg_var);
            for &(name, base) in preload {
                b.preload_var(name, base);
            }
            b
        })
        .collect();
    let parts = scatter(plan, workers, |mut ddg, range| {
        let mut stats: FxSeededHashMap<u64, VarStatsBuilder> =
            FxSeededHashMap::with_hasher(FxSeededState::with_seed(addr_seed));
        for i in 0..range.start {
            ddg.observe_replay(&records[i], annots[i]);
        }
        for i in range {
            if let Some(e) = ddg.observe(&records[i], annots[i]) {
                if mli_bases.contains_key(&e.base) {
                    let b = stats
                        .entry(e.base)
                        .or_insert_with(|| VarStatsBuilder::with_seed(addr_seed));
                    if e.phase == Phase::After {
                        b.feed_after_read();
                    } else {
                        b.feed_inside(e.iter, e.elem, e.is_write);
                    }
                }
            }
        }
        let stats: Vec<(u64, VarStats, Option<u64>)> = stats
            .into_iter()
            .map(|(base, b)| {
                let fe = b.first_elem();
                (base, b.finish(), fe)
            })
            .collect();
        Ok::<_, Infallible>((ddg, stats))
    })
    .unwrap_or_else(|e| match e {});
    let mut parts = parts.into_iter();
    let (mut ddg, first_stats) = parts.next().expect("at least one shard");
    let mut stats_parts = vec![first_stats];
    for (d, s) in parts {
        ddg.absorb(&d);
        stats_parts.push(s);
    }
    (ddg, merge_var_stats(stats_parts, ctx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocheck_trace::TraceSource;

    fn two_iter_records() -> Vec<Record> {
        TraceSource::from_str(crate::engine::tests::TWO_ITER)
            .records()
            .unwrap()
    }

    fn outcome_fields(o: &EngineOutcome) -> (usize, u32, u64, usize, usize) {
        (
            o.mli.len(),
            o.iterations,
            o.records,
            o.ddg.len(),
            o.ddg.edge_count(),
        )
    }

    #[test]
    fn sharded_matches_serial_at_every_count() {
        let ctx = AnalysisCtx::session();
        let records = {
            let _g = ctx.enter();
            two_iter_records()
        };
        let cfg = EngineConfig::for_region("main", 5, 7);
        let serial = run_sharded(&cfg, &ctx, &records, None, 1).unwrap();
        let serial_dot = serial.ddg.to_dot(|_| false);
        for shards in 2..=5 {
            let out = run_sharded(&cfg, &ctx, &records, None, shards).unwrap();
            assert_eq!(
                outcome_fields(&out),
                outcome_fields(&serial),
                "{shards} shards"
            );
            assert_eq!(out.ddg.to_dot(|_| false), serial_dot, "{shards} shards");
            assert_eq!(out.header_label, serial.header_label);
            for (base, s) in &serial.stats {
                assert_eq!(out.stats.get(base), Some(s), "stats for {base:#x}");
            }
            assert_eq!(out.stats.len(), serial.stats.len());
        }
    }

    #[test]
    fn boundaries_mark_iteration_starts() {
        let ctx = AnalysisCtx::session();
        let records = {
            let _g = ctx.enter();
            two_iter_records()
        };
        let cfg = EngineConfig::for_region("main", 5, 7);
        let bounds = iteration_boundaries(&records, &cfg, &ctx);
        // Two iterations → two transitions: iteration 1's start and the
        // final (failing) condition evaluation. Both are safe cuts: every
        // per-iteration window still lives entirely inside one shard.
        assert_eq!(bounds.len(), 2);
        // Passing precomputed boundaries gives the same outcome.
        let from_scan = run_sharded(&cfg, &ctx, &records, None, 2).unwrap();
        let from_index = run_sharded(&cfg, &ctx, &records, Some(&bounds), 2).unwrap();
        assert_eq!(outcome_fields(&from_scan), outcome_fields(&from_index));
    }

    #[test]
    fn cross_shard_multi_elem_is_detected() {
        // Shard 1 sees only element A, shard 2 only element B: neither
        // worker can set multi_elem; the merge must.
        let a = vec![(
            0x10u64,
            VarStats {
                written_in_loop: true,
                ..VarStats::default()
            },
            Some(0xa0u64),
        )];
        let b = vec![(
            0x10u64,
            VarStats {
                written_in_loop: true,
                ..VarStats::default()
            },
            Some(0xb0u64),
        )];
        let ctx = AnalysisCtx::session();
        let merged = merge_var_stats(vec![a.clone(), b], &ctx);
        assert!(merged[&0x10].multi_elem, "different anchors across shards");
        // Same anchor in both shards: no false positive.
        let merged = merge_var_stats(vec![a.clone(), a], &ctx);
        assert!(!merged[&0x10].multi_elem);
    }

    #[test]
    fn merged_graph_respects_session_ddg_ceiling() {
        use autocheck_trace::ResourceLimits;
        let ctx = AnalysisCtx::session().with_limits(ResourceLimits::new().max_ddg_nodes(1));
        let records = {
            let _g = ctx.enter();
            two_iter_records()
        };
        let cfg = EngineConfig::for_region("main", 5, 7);
        let err = run_sharded(&cfg, &ctx, &records, None, 2).unwrap_err();
        match err {
            EngineError::Resource(e) => assert_eq!(e.kind, ResourceKind::DdgNodes),
            other => panic!("expected Resource(DdgNodes), got {other:?}"),
        }
    }

    #[test]
    fn shard_metrics_are_booked() {
        use autocheck_obs::Metrics;
        let ctx = AnalysisCtx::session().with_metrics(Metrics::enabled());
        let records = {
            let _g = ctx.enter();
            two_iter_records()
        };
        let cfg = EngineConfig::for_region("main", 5, 7);
        let out = run_sharded(&cfg, &ctx, &records, None, 2).unwrap();
        let m = ctx.metrics();
        assert_eq!(m.counter(CounterId::ShardRecords), out.records);
        assert_eq!(m.counter(CounterId::EngineRecords), out.records);
        let (_, spans) = m.timer(TimerId::ShardWall);
        assert_eq!(spans, 2, "one shard.wall span per worker");
        assert_eq!(m.timer(TimerId::ShardMerge).1, 1);
        assert_eq!(m.gauge(GaugeId::Iterations), (2, 2));
    }
}
