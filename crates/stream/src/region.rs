//! Incremental trace partitioning around the main computation loop.
//!
//! The streaming port of `autocheck_core::region::Phases::compute`: instead
//! of a whole-trace pass producing a `Vec<Annot>`, [`RegionTracker`]
//! annotates each record as it arrives. The batch implementation needs one
//! record of lookahead (a `Call` record pushes a call frame only if the
//! *next* record enters the callee); the tracker reproduces that exactly by
//! deferring the stack operation of each record until the next record shows
//! up — no buffering, identical annotations.

use autocheck_trace::{record::opcodes, AnalysisCtx, Name, Record, SymId};

/// Which part of the execution a record belongs to (the paper's Part A /
/// Part B / Part C). Mirrors `autocheck_core::Phase`; redeclared here so
/// this crate stays below `autocheck-core` in the dependency graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Before the main computation loop.
    Before,
    /// Inside the main computation loop.
    Inside,
    /// After the main computation loop.
    After,
}

/// Per-record annotation, identical in content to the batch `Annot`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamAnnot {
    /// Phase of this record.
    pub phase: Phase,
    /// Iteration index (0-based) when `phase == Inside`.
    pub iter: u32,
    /// True when the record executes directly in the region function.
    pub region_level: bool,
}

/// Call-stack maintenance deferred from the previous record (the batch
/// code's `records.get(i + 1)` lookahead, inverted).
enum Pending {
    None,
    /// The previous record was a form-2 `Call` of this callee: push a frame
    /// if the next record enters it.
    Call(SymId),
    /// The previous record was a `Ret`: pop (guarded against the root).
    Ret,
}

/// Incremental region partitioner.
pub struct RegionTracker {
    function: SymId,
    start_line: u32,
    end_line: u32,
    stack: Vec<SymId>,
    phase: Phase,
    iter: u32,
    started: bool,
    header_label: Option<SymId>,
    cond_evals: u32,
    pending: Pending,
}

impl RegionTracker {
    /// Track the region `function`:`start_line`..=`end_line` (the paper's
    /// MCLR input), interning in the thread's current space.
    pub fn new(function: impl AsRef<str>, start_line: u32, end_line: u32) -> RegionTracker {
        Self::with_ctx(&AnalysisCtx::current(), function, start_line, end_line)
    }

    /// [`RegionTracker::new`], interning the function name in `ctx`'s space
    /// so comparisons against record symbols from the same session are id
    /// comparisons.
    pub fn with_ctx(
        ctx: &AnalysisCtx,
        function: impl AsRef<str>,
        start_line: u32,
        end_line: u32,
    ) -> RegionTracker {
        RegionTracker {
            function: ctx.intern(function.as_ref()),
            start_line,
            end_line,
            stack: Vec::new(),
            phase: Phase::Before,
            iter: 0,
            started: false,
            header_label: None,
            cond_evals: 0,
            pending: Pending::None,
        }
    }

    /// Annotate the next record of the trace. Call in execution order.
    pub fn annotate(&mut self, r: &Record) -> StreamAnnot {
        // Apply the stack operation deferred from the previous record, now
        // that this record supplies the lookahead the batch code reads from
        // `records[i + 1]`.
        match std::mem::replace(&mut self.pending, Pending::None) {
            Pending::Call(callee) => {
                if r.func == callee {
                    self.stack.push(r.func);
                }
            }
            Pending::Ret => {
                if self.stack.len() > 1 {
                    self.stack.pop();
                }
            }
            Pending::None => {}
        }
        if self.stack.is_empty() {
            self.stack.push(r.func);
        }
        let region_level = self.stack.len() == self.region_frame_depth() && r.func == self.function;

        if region_level {
            // Phase transitions are driven by region-function lines.
            if r.src_line >= 0 {
                let line = r.src_line as u32;
                if line < self.start_line {
                    if !self.started {
                        self.phase = Phase::Before;
                    }
                } else if line > self.end_line {
                    if self.started {
                        self.phase = Phase::After;
                    }
                } else if self.phase != Phase::After {
                    self.phase = Phase::Inside;
                    self.started = true;
                }
            }
            // Header detection: the conditional branch at the start line
            // (one positional operand: the i1 condition).
            if self.phase == Phase::Inside
                && r.opcode == opcodes::BR
                && r.src_line == self.start_line as i32
                && r.positional().count() == 1
            {
                match self.header_label {
                    None => {
                        self.header_label = Some(r.bb_label);
                        self.cond_evals = 1;
                    }
                    Some(l) if l == r.bb_label => {
                        self.cond_evals += 1;
                        self.iter = self.cond_evals - 1;
                    }
                    Some(_) => {}
                }
            }
        }

        // Defer this record's own stack maintenance until the next record.
        match r.opcode {
            opcodes::CALL => {
                if let Some(Name::Sym(callee)) = r.op1().map(|o| o.name) {
                    self.pending = Pending::Call(callee);
                }
            }
            opcodes::RET => self.pending = Pending::Ret,
            _ => {}
        }

        StreamAnnot {
            phase: self.phase,
            iter: self.iter,
            region_level,
        }
    }

    /// Loop iterations observed so far (condition evaluations minus the
    /// final failing one — call after the trace ends for the batch-equal
    /// count).
    pub fn iterations(&self) -> u32 {
        self.cond_evals.saturating_sub(1)
    }

    /// Label of the loop header's basic block, if identified.
    pub fn header_label(&self) -> Option<SymId> {
        self.header_label
    }

    fn region_frame_depth(&self) -> usize {
        self.stack
            .iter()
            .position(|&f| f == self.function)
            .map(|p| p + 1)
            .unwrap_or(usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn parse_str(
        text: &str,
    ) -> Result<Vec<autocheck_trace::Record>, autocheck_trace::reader::TraceReadError> {
        autocheck_trace::TraceSource::from_str(text).records()
    }

    /// The same miniature trace the batch region tests use: main runs a
    /// 2-iteration loop at lines 5..=7 calling foo inside, then prints.
    fn mini_trace() -> Vec<Record> {
        let text = "\
0,3,main,3:1,0,28,0,
0,5,main,5:1,1,27,1,
0,5,main,5:1,1,2,2,
1,1,1,1,5,
0,6,main,6:1,2,49,3,
1,64,0x400010,1,foo,
0,2,foo,2:1,0,28,4,
0,2,foo,2:1,0,1,5,
0,7,main,6:1,2,28,6,
0,5,main,5:1,1,27,7,
0,5,main,5:1,1,2,8,
1,1,1,1,5,
0,6,main,6:1,2,49,9,
1,64,0x400010,1,foo,
0,2,foo,2:1,0,28,10,
0,2,foo,2:1,0,1,11,
0,7,main,6:1,2,28,12,
0,5,main,5:1,1,27,13,
0,5,main,5:1,1,2,14,
1,1,0,1,5,
0,9,main,9:1,3,28,15,
";
        parse_str(text).unwrap()
    }

    fn annotate_all(recs: &[Record]) -> (Vec<StreamAnnot>, RegionTracker) {
        let mut t = RegionTracker::new("main", 5, 7);
        let annots = recs.iter().map(|r| t.annotate(r)).collect();
        (annots, t)
    }

    #[test]
    fn phases_split_before_inside_after() {
        let recs = mini_trace();
        let (annots, _) = annotate_all(&recs);
        assert_eq!(annots[0].phase, Phase::Before);
        assert_eq!(annots[1].phase, Phase::Inside);
        assert_eq!(annots[14].phase, Phase::Inside);
        assert_eq!(annots[recs.len() - 1].phase, Phase::After);
    }

    #[test]
    fn iteration_numbers_and_count() {
        let recs = mini_trace();
        let (annots, t) = annotate_all(&recs);
        assert_eq!(t.iterations(), 2);
        let second_iter_store = recs.iter().position(|r| r.dyn_id == 12).unwrap();
        assert_eq!(annots[second_iter_store].iter, 1);
        let first_body = recs.iter().position(|r| r.dyn_id == 6).unwrap();
        assert_eq!(annots[first_body].iter, 0);
    }

    #[test]
    fn callee_records_are_not_region_level_but_keep_phase() {
        let recs = mini_trace();
        let (annots, _) = annotate_all(&recs);
        let foo_store = recs.iter().position(|r| r.dyn_id == 4).unwrap();
        assert_eq!(annots[foo_store].phase, Phase::Inside);
        assert!(!annots[foo_store].region_level);
        let main_store = recs.iter().position(|r| r.dyn_id == 6).unwrap();
        assert!(annots[main_store].region_level);
    }

    #[test]
    fn header_label_is_identified() {
        let recs = mini_trace();
        let (_, t) = annotate_all(&recs);
        assert_eq!(t.header_label().map(|l| l.as_str()).as_deref(), Some("1"));
    }

    #[test]
    fn empty_stream_is_fine() {
        let t = RegionTracker::new("main", 5, 7);
        assert_eq!(t.iterations(), 0);
        assert!(t.header_label().is_none());
    }

    #[test]
    fn loop_that_never_runs_keeps_everything_outside() {
        let text = "\
0,3,main,3:1,0,28,0,
0,5,main,5:1,1,27,1,
0,5,main,5:1,1,2,2,
1,1,0,1,5,
0,9,main,9:1,3,28,3,
";
        let recs = parse_str(text).unwrap();
        let (annots, t) = annotate_all(&recs);
        assert_eq!(t.iterations(), 0);
        assert_eq!(annots[3].phase, Phase::After);
    }
}
