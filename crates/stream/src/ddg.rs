//! Incremental dependency analysis: reg-var/reg-reg maps, the shared
//! dependency graph, and per-access event emission.
//!
//! [`DdgBuilder`] is the **only** DDG construction in the workspace: the
//! batch pipeline (`autocheck_core::ddg::DdgAnalysis`) folds its record
//! slice through this builder exactly the way the streaming engine feeds it
//! record-by-record, so the two pipelines cannot drift. Two batch-only
//! affordances exist for that fold:
//!
//! * [`DdgBuilder::preload_var`] pre-interns the MLI variable nodes so the
//!   batch graph always shows them first (stable DOT node numbering);
//! * [`DdgBuilder::with_reg_var_on_the_fly`] exposes the paper's
//!   "Mutable-register" ablation: `false` freezes the first binding of each
//!   register — demonstrably wrong on traces where a register is reused for
//!   different variables.
//!
//! Each record yields at most one [`AccessEvent`] carrying everything both
//! consumers need (the streaming engine folds it into
//! [`crate::stats::VarStatsBuilder`] immediately; the batch fold filters it
//! to MLI bases and optionally retains it as an `RwEvent`) — nothing is
//! accumulated here, so memory is bounded by the program's name count.
//!
//! The reg-var map semantics (on-the-fly SSA reload rebinding, the paper's
//! "Mutable-register" resolution), the call-form handling (builtin calls as
//! arithmetic, argument/parameter triplets, return-value linking), and the
//! Table-I selective opcode set are the paper's §IV-B design.

use crate::graph::{CsrGraph, Graph};
use crate::prov::{relevant_opcode, resolve_alias as resolve};
use crate::region::{Phase, StreamAnnot};
use autocheck_trace::{record::opcodes, Name, NameMap, Record, SymId};

/// One read or write on a named memory location, as observed mid-stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AccessEvent {
    /// Base address of the variable touched.
    pub base: u64,
    /// Address of the accessed element (== `base` for scalars).
    pub elem: u64,
    /// True for a write (store), false for a read (load).
    pub is_write: bool,
    /// Dynamic instruction id of the access (time order).
    pub dyn_id: u64,
    /// Loop iteration (0-based) the access occurred in.
    pub iter: u32,
    /// Phase the access occurred in.
    pub phase: Phase,
    /// Source line of the access (0 for compiler-generated records).
    pub line: u32,
}

/// Incremental dependency analyzer. Feed records (with annotations) in
/// execution order; each call may emit one [`AccessEvent`].
pub struct DdgBuilder {
    selective: bool,
    on_the_fly_reg_var: bool,
    graph: Graph,
    reg_var: NameMap<(SymId, u64)>,
    call_stack: Vec<Option<Name>>,
}

impl DdgBuilder {
    /// A fresh builder. `selective` is the paper's §IV-B trace iteration
    /// toggle (identical results either way; `true` skips irrelevant
    /// opcodes).
    pub fn new(selective: bool) -> DdgBuilder {
        DdgBuilder {
            selective,
            on_the_fly_reg_var: true,
            graph: Graph::new(),
            reg_var: NameMap::new(),
            call_stack: Vec::new(),
        }
    }

    /// Toggle on-the-fly reg-var rebinding (the paper's "Mutable-register"
    /// resolution; default `true`). `false` is the ablation that freezes
    /// each register's first binding.
    pub fn with_reg_var_on_the_fly(mut self, yes: bool) -> DdgBuilder {
        self.on_the_fly_reg_var = yes;
        self
    }

    /// Pre-intern a variable node so it is present (and numbered first)
    /// even if no record touches it — the batch pipeline preloads the MLI
    /// set this way.
    pub fn preload_var(&mut self, name: SymId, base: u64) {
        self.graph.var_node(name, base);
    }

    /// The graph grown so far.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Freeze the grown graph into its CSR form.
    pub fn finish(self) -> CsrGraph {
        self.graph.freeze()
    }

    /// Bind a register, honoring the rebinding mode.
    fn bind(&mut self, reg: Name, value: (SymId, u64)) {
        if self.on_the_fly_reg_var {
            self.reg_var.insert(reg, value);
        } else {
            self.reg_var.insert_if_absent(reg, value);
        }
    }

    /// Advance over one record, emitting the access event (if any) for the
    /// caller to fold into its per-variable statistics.
    pub fn observe(&mut self, r: &Record, a: StreamAnnot) -> Option<AccessEvent> {
        self.observe_impl::<true>(r, a)
    }

    /// Advance in **replay mode**: maintain the resolution state
    /// (`reg_var` bindings and the call stack) without growing the graph
    /// or emitting events. A sharded worker fast-forwards through the
    /// records preceding its shard this way, arriving at its shard start
    /// with exactly the serial builder's resolution state while its graph
    /// holds only the (preloaded) prefix — so shard-order merging
    /// reproduces serial node numbering.
    pub fn observe_replay(&mut self, r: &Record, a: StreamAnnot) {
        self.observe_impl::<false>(r, a);
    }

    fn observe_impl<const FULL: bool>(
        &mut self,
        r: &Record,
        a: StreamAnnot,
    ) -> Option<AccessEvent> {
        if self.selective && !relevant_opcode(r.opcode) {
            return None;
        }
        match r.opcode {
            opcodes::LOAD => {
                let (Some(ptr), Some(res)) = (r.op1(), &r.result) else {
                    return None;
                };
                let (name, base) = resolve(&self.reg_var, ptr.name, ptr.value.as_ptr())?;
                // reg-var map update (SSA reload keeps this fresh — the
                // paper's "Mutable-register" resolution).
                let res_name = res.name;
                self.bind(res_name, (name, base));
                if !FULL {
                    return None;
                }
                let vn = self.graph.var_node(name, base);
                let rn = self.graph.reg_node(res_name);
                self.graph.add_edge(vn, rn);
                event(r, a, base, ptr.value.as_ptr(), false)
            }
            opcodes::STORE => {
                if !FULL {
                    // Stores bind nothing: nothing to replay.
                    return None;
                }
                let (Some(val), Some(ptr)) = (r.op1(), r.op2()) else {
                    return None;
                };
                let (name, base) = resolve(&self.reg_var, ptr.name, ptr.value.as_ptr())?;
                let dst = self.graph.var_node(name, base);
                if val.is_reg && val.name != Name::None {
                    let src = self.graph.reg_node(val.name);
                    self.graph.add_edge(src, dst);
                }
                event(r, a, base, ptr.value.as_ptr(), true)
            }
            opcodes::GETELEMENTPTR | opcodes::BITCAST => {
                let (Some(basep), Some(res)) = (r.op1(), &r.result) else {
                    return None;
                };
                if let Some((name, base)) = resolve(&self.reg_var, basep.name, basep.value.as_ptr())
                {
                    let res_name = res.name;
                    self.bind(res_name, (name, base));
                    if FULL {
                        let vn = self.graph.var_node(name, base);
                        let rn = self.graph.reg_node(res_name);
                        self.graph.add_edge(vn, rn);
                    }
                }
                None
            }
            opcodes::ALLOCA => {
                // Locals are identified by their Alloca (paper Challenge 2);
                // registering the variable name at its fresh address keeps
                // the reg-var resolution exact when names collide across
                // frames.
                if let Some(res) = &r.result {
                    if let (Name::Sym(s), Some(addr)) = (res.name, res.value.as_ptr()) {
                        self.reg_var.insert(res.name, (s, addr));
                    }
                }
                None
            }
            op if (8..=25).contains(&op)
                || op == opcodes::ICMP
                || op == opcodes::FCMP
                || op == opcodes::ZEXT
                || op == opcodes::SITOFP
                || op == opcodes::FPTOSI =>
            {
                if !FULL {
                    // Arithmetic touches only the graph's reg-reg chains.
                    return None;
                }
                // reg-reg map: link inputs to the result.
                let res = r.result.as_ref()?;
                let rn = self.graph.reg_node(res.name);
                for operand in r.positional() {
                    if operand.is_reg && operand.name != Name::None {
                        let on = self.graph.reg_node(operand.name);
                        self.graph.add_edge(on, rn);
                    }
                }
                None
            }
            opcodes::CALL => {
                let params: Vec<_> = r.params().collect();
                if params.is_empty() {
                    // Form 1 (builtin): treat as arithmetic. Graph-only —
                    // and no call-stack push in either mode.
                    if !FULL {
                        return None;
                    }
                    if let Some(res) = &r.result {
                        let rn = self.graph.reg_node(res.name);
                        for operand in r.positional().skip(1) {
                            if operand.is_reg && operand.name != Name::None {
                                let on = self.graph.reg_node(operand.name);
                                self.graph.add_edge(on, rn);
                            }
                        }
                    }
                } else {
                    // Form 2: argument/parameter triplets. Positional
                    // operand 1 is the callee; arguments follow, pairing
                    // with the `f` lines in order.
                    for (arg, param) in r.positional().skip(1).zip(params.iter()) {
                        if let Some((name, base)) =
                            resolve(&self.reg_var, arg.name, arg.value.as_ptr())
                        {
                            self.reg_var.insert(param.name, (name, base));
                            if FULL {
                                let vn = self.graph.var_node(name, base);
                                let pn = self.graph.reg_node(param.name);
                                self.graph.add_edge(vn, pn);
                            }
                        } else if FULL && arg.is_reg && arg.name != Name::None {
                            // Scalar argument from a register: alias the
                            // parameter to the same register chain.
                            let an = self.graph.reg_node(arg.name);
                            let pn = self.graph.reg_node(param.name);
                            self.graph.add_edge(an, pn);
                        }
                    }
                    self.call_stack.push(r.result.as_ref().map(|res| res.name));
                }
                None
            }
            opcodes::RET => {
                if let Some(pending) = self.call_stack.pop().flatten() {
                    if let Some(op) = r.op1() {
                        if op.is_reg && op.name != Name::None {
                            if FULL {
                                let from = self.graph.reg_node(op.name);
                                let to = self.graph.reg_node(pending);
                                self.graph.add_edge(from, to);
                            }
                            // Value flow: the caller's result register now
                            // carries whatever the returned register
                            // resolved to.
                            if let Some(&v) = self.reg_var.get(op.name) {
                                self.reg_var.insert(pending, v);
                            }
                        }
                    }
                }
                None
            }
            _ => None,
        }
    }

    /// Fold a **later shard's** builder into this one: absorb its graph
    /// (see [`Graph::absorb`] for the node-numbering determinism
    /// argument). The resolution maps are not merged — they only matter
    /// mid-stream, and each worker maintained its own by replaying the
    /// preceding records.
    pub fn absorb(&mut self, other: &DdgBuilder) {
        self.graph.absorb(&other.graph);
    }
}

/// The event filter: only loop-phase accesses and after-loop reads matter
/// to the heuristics.
fn event(
    r: &Record,
    a: StreamAnnot,
    base: u64,
    elem: Option<u64>,
    is_write: bool,
) -> Option<AccessEvent> {
    match (a.phase, is_write) {
        (Phase::Inside, _) | (Phase::After, false) => {}
        _ => return None,
    }
    Some(AccessEvent {
        base,
        elem: elem.unwrap_or(base),
        is_write,
        dyn_id: r.dyn_id,
        iter: a.iter,
        phase: a.phase,
        line: if r.src_line > 0 { r.src_line as u32 } else { 0 },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionTracker;
    fn parse_str(
        text: &str,
    ) -> Result<Vec<autocheck_trace::Record>, autocheck_trace::reader::TraceReadError> {
        autocheck_trace::TraceSource::from_str(text).records()
    }

    fn events_of(text: &str, selective: bool) -> (Vec<AccessEvent>, usize, usize) {
        let recs = parse_str(text).unwrap();
        let mut tracker = RegionTracker::new("main", 5, 7);
        let mut ddg = DdgBuilder::new(selective);
        let mut events = Vec::new();
        for r in &recs {
            let a = tracker.annotate(r);
            if let Some(e) = ddg.observe(r, a) {
                events.push(e);
            }
        }
        (events, ddg.graph().len(), ddg.graph().edge_count())
    }

    /// sum += a[i] in the loop (the batch ddg test trace).
    const SUM_ARRAY: &str = "\
0,2,main,2:1,0,28,0,
1,64,0,0,,
2,64,0x7f0000000000,1,sum,
0,2,main,2:1,0,29,1,
1,64,0x7f0000000100,1,a,
2,64,0,0,,
r,64,0x7f0000000100,1,0,
0,2,main,2:1,0,28,2,
1,64,5,0,,
2,64,0x7f0000000100,1,0,
0,5,main,5:1,1,27,3,
1,64,0x7f0000000000,1,sum,
r,64,0,1,1,
0,5,main,5:1,1,2,4,
1,1,1,1,9,
0,6,main,6:1,2,29,5,
1,64,0x7f0000000100,1,a,
2,64,0,0,,
r,64,0x7f0000000100,1,2,
0,6,main,6:1,2,27,6,
1,64,0x7f0000000100,1,2,
r,64,5,1,3,
0,6,main,6:1,2,27,7,
1,64,0x7f0000000000,1,sum,
r,64,0,1,4,
0,6,main,6:1,2,8,8,
1,64,0,1,4,
2,64,5,1,3,
r,64,5,1,5,
0,6,main,6:1,2,28,9,
1,64,5,1,5,
2,64,0x7f0000000000,1,sum,
0,5,main,5:1,1,27,10,
1,64,0x7f0000000000,1,sum,
r,64,5,1,6,
0,5,main,5:1,1,2,11,
1,1,0,1,9,
0,9,main,9:1,3,27,12,
1,64,0x7f0000000000,1,sum,
r,64,5,1,7,
";

    #[test]
    fn loop_reads_writes_and_after_loop_read_are_emitted() {
        let (events, _, _) = events_of(SUM_ARRAY, true);
        let sum = 0x7f00_0000_0000u64;
        assert!(events
            .iter()
            .any(|e| e.base == sum && e.is_write && e.phase == Phase::Inside));
        assert!(events
            .iter()
            .any(|e| e.base == sum && !e.is_write && e.phase == Phase::After));
        // Pre-loop stores must NOT surface (the event filter).
        assert!(events.iter().all(|e| e.phase != Phase::Before));
        // Events carry their record's identity for the batch RwEvent form.
        assert!(
            events.windows(2).all(|w| w[0].dyn_id < w[1].dyn_id),
            "dyn ids are time-ordered"
        );
        assert!(events.iter().all(|e| e.line > 0));
    }

    #[test]
    fn selective_and_exhaustive_agree() {
        let (sel, sel_nodes, sel_edges) = events_of(SUM_ARRAY, true);
        let (all, all_nodes, all_edges) = events_of(SUM_ARRAY, false);
        assert_eq!(sel, all);
        assert_eq!(sel_nodes, all_nodes);
        assert_eq!(sel_edges, all_edges);
    }

    /// The paper's Mutable-register challenge: a temp reused as a pointer
    /// for two different arrays must be rebound on the fly; the frozen
    /// ablation misattributes the second store.
    #[test]
    fn mutable_register_rebinds_on_the_fly_and_freezes_in_ablation() {
        let text = "\
0,2,main,2:1,0,28,0,
1,64,1,0,,
2,64,0x7f0000000000,1,x,
0,2,main,2:1,0,28,1,
1,64,2,0,,
2,64,0x7f0000000100,1,z,
0,5,main,5:1,1,27,2,
1,64,0x7f0000000000,1,x,
r,64,1,1,9,
0,5,main,5:1,1,2,3,
1,1,1,1,9,
0,6,main,6:1,2,29,4,
1,64,0x7f0000000000,1,x,
2,64,0,0,,
r,64,0x7f0000000000,1,8,
0,6,main,6:1,2,28,5,
1,64,7,0,,
2,64,0x7f0000000000,1,8,
0,7,main,7:1,2,29,6,
1,64,0x7f0000000100,1,z,
2,64,0,0,,
r,64,0x7f0000000100,1,8,
0,7,main,7:1,2,28,7,
1,64,9,0,,
2,64,0x7f0000000100,1,8,
0,5,main,5:1,1,27,8,
1,64,0x7f0000000000,1,x,
r,64,1,1,9,
0,5,main,5:1,1,2,9,
1,1,0,1,9,
";
        let run = |on_the_fly: bool| {
            let recs = parse_str(text).unwrap();
            let mut tracker = RegionTracker::new("main", 5, 7);
            let mut ddg = DdgBuilder::new(true).with_reg_var_on_the_fly(on_the_fly);
            let mut events = Vec::new();
            for r in &recs {
                let a = tracker.annotate(r);
                if let Some(e) = ddg.observe(r, a) {
                    events.push(e);
                }
            }
            events
        };
        let writes = |events: &[AccessEvent], base: u64| {
            events
                .iter()
                .filter(|e| e.base == base && e.is_write)
                .count()
        };
        let fly = run(true);
        assert_eq!(writes(&fly, 0x7f00_0000_0000), 1, "one write on x");
        assert_eq!(writes(&fly, 0x7f00_0000_0100), 1, "one write on z");
        // The frozen map leaves temp 8 bound to x: the second store is
        // misattributed — x gets two writes, z gets none.
        let frozen = run(false);
        assert_eq!(writes(&frozen, 0x7f00_0000_0000), 2, "x stole z's write");
        assert_eq!(writes(&frozen, 0x7f00_0000_0100), 0, "z's write was lost");
    }

    /// Fig. 6(b)-style triplet: foo(p) writes through p which aliases a.
    #[test]
    fn call_triplets_attribute_callee_stores_to_caller_vars() {
        let text = "\
0,2,main,2:1,0,29,0,
1,64,0x7f0000000100,1,a,
2,64,0,0,,
r,64,0x7f0000000100,1,0,
0,2,main,2:1,0,28,1,
1,64,1,0,,
2,64,0x7f0000000100,1,0,
0,5,main,5:1,1,27,2,
1,64,0x7f0000000100,1,a,
r,64,1,1,1,
0,5,main,5:1,1,2,3,
1,1,1,1,9,
0,6,main,6:1,2,29,4,
1,64,0x7f0000000100,1,a,
2,64,0,0,,
r,64,0x7f0000000100,1,2,
0,6,main,6:1,2,49,5,
1,64,0x400000,1,foo,
2,64,0x7f0000000100,1,2,
f,64,0x7f0000000100,1,p,
0,1,foo,1:1,0,29,6,
1,64,0x7f0000000100,1,p,
2,64,0,0,,
r,64,0x7f0000000100,1,0,
0,1,foo,1:1,0,28,7,
1,64,9,0,,
2,64,0x7f0000000100,1,0,
0,1,foo,1:1,0,1,8,
0,5,main,5:1,1,27,9,
1,64,0x7f0000000100,1,a,
r,64,9,1,3,
0,5,main,5:1,1,2,10,
1,1,0,1,9,
";
        let (events, _, _) = events_of(text, true);
        let writes: Vec<_> = events
            .iter()
            .filter(|e| e.base == 0x7f00_0000_0100 && e.is_write)
            .collect();
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].phase, Phase::Inside);
    }

    #[test]
    fn preloaded_vars_take_the_first_node_ids() {
        let mut ddg = DdgBuilder::new(true);
        ddg.preload_var(SymId::intern("ddg_preload_mli"), 0x42);
        let recs = parse_str(SUM_ARRAY).unwrap();
        let mut tracker = RegionTracker::new("main", 5, 7);
        for r in &recs {
            let a = tracker.annotate(r);
            ddg.observe(r, a);
        }
        let frozen = ddg.finish();
        assert!(matches!(
            frozen.nodes[0],
            crate::graph::NodeKind::Var { base: 0x42, .. }
        ));
        assert!(frozen.len() > 1);
    }
}
