//! Incremental dependency analysis: reg-var/reg-reg maps, a streaming DDG,
//! and per-access event emission.
//!
//! The streaming port of `autocheck_core::ddg::DdgAnalysis::run_with`. Two
//! differences, both required by the online setting:
//!
//! * the batch analysis receives the final MLI set up front and filters the
//!   event sequence to MLI bases; online, MLI membership is only known at
//!   end-of-trace, so the builder emits an [`AccessEvent`] for **every**
//!   resolved memory access and leaves the filtering to the engine's
//!   finish step (per-base state is bounded by the program's variable
//!   count, so this costs O(variables), not O(trace));
//! * instead of accumulating an O(trace) `Vec<RwEvent>`, each record yields
//!   at most one event which the caller folds immediately into
//!   [`crate::stats::VarStatsBuilder`] — nothing is retained.
//!
//! The reg-var map semantics (on-the-fly SSA reload rebinding, the paper's
//! "Mutable-register" resolution), the call-form handling (builtin calls as
//! arithmetic, argument/parameter triplets, return-value linking), and the
//! Table-I selective opcode set are identical to the batch implementation.

use crate::nodeindex::NodeIndex;
use crate::prov::{relevant_opcode, resolve_alias as resolve};
use crate::region::{Phase, StreamAnnot};
use autocheck_trace::{record::opcodes, Name, NameMap, Record, SymId};
use fxhash::FxHashSet;

/// One read or write on a named memory location, as observed mid-stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AccessEvent {
    /// Base address of the variable touched.
    pub base: u64,
    /// Address of the accessed element (== `base` for scalars).
    pub elem: u64,
    /// True for a write (store), false for a read (load).
    pub is_write: bool,
    /// Loop iteration (0-based) the access occurred in.
    pub iter: u32,
    /// Phase the access occurred in.
    pub phase: Phase,
}

/// The dependency graph grown online. Node and edge counts are bounded by
/// the program's distinct names, not the trace length. Nodes are interned
/// through the dense per-kind [`NodeIndex`]; edges live in an
/// integer-keyed set.
#[derive(Default)]
pub struct StreamGraph {
    index: NodeIndex,
    edges: FxHashSet<(u32, u32)>,
}

impl StreamGraph {
    fn var_node(&mut self, name: SymId, base: u64) -> u32 {
        self.index.var_node(name, base).0
    }

    fn reg_node(&mut self, name: Name) -> u32 {
        self.index.reg_node(name).0
    }

    fn add_edge(&mut self, parent: u32, child: u32) {
        if parent != child {
            self.edges.insert((parent, child));
        }
    }

    /// Number of nodes interned so far.
    pub fn node_count(&self) -> usize {
        self.index.len()
    }

    /// Number of distinct dependency edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

/// Incremental dependency analyzer. Feed records (with annotations) in
/// execution order; each call may emit one [`AccessEvent`].
pub struct DdgBuilder {
    selective: bool,
    graph: StreamGraph,
    reg_var: NameMap<(SymId, u64)>,
    call_stack: Vec<Option<Name>>,
}

impl DdgBuilder {
    /// A fresh builder. `selective` is the paper's §IV-B trace iteration
    /// toggle (identical results either way; `true` skips irrelevant
    /// opcodes).
    pub fn new(selective: bool) -> DdgBuilder {
        DdgBuilder {
            selective,
            graph: StreamGraph::default(),
            reg_var: NameMap::new(),
            call_stack: Vec::new(),
        }
    }

    /// The graph grown so far.
    pub fn graph(&self) -> &StreamGraph {
        &self.graph
    }

    /// Advance over one record, emitting the access event (if any) for the
    /// caller to fold into its per-variable statistics.
    pub fn observe(&mut self, r: &Record, a: StreamAnnot) -> Option<AccessEvent> {
        if self.selective && !relevant_opcode(r.opcode) {
            return None;
        }
        match r.opcode {
            opcodes::LOAD => {
                let (Some(ptr), Some(res)) = (r.op1(), &r.result) else {
                    return None;
                };
                let (name, base) = resolve(&self.reg_var, ptr.name, ptr.value.as_ptr())?;
                // On-the-fly reg-var update: SSA reloads rebind a shared
                // temporary to the right variable at each use.
                self.reg_var.insert(res.name, (name, base));
                let vn = self.graph.var_node(name, base);
                let rn = self.graph.reg_node(res.name);
                self.graph.add_edge(vn, rn);
                event(a, base, ptr.value.as_ptr(), false)
            }
            opcodes::STORE => {
                let (Some(val), Some(ptr)) = (r.op1(), r.op2()) else {
                    return None;
                };
                let (name, base) = resolve(&self.reg_var, ptr.name, ptr.value.as_ptr())?;
                let dst = self.graph.var_node(name, base);
                if val.is_reg && val.name != Name::None {
                    let src = self.graph.reg_node(val.name);
                    self.graph.add_edge(src, dst);
                }
                event(a, base, ptr.value.as_ptr(), true)
            }
            opcodes::GETELEMENTPTR | opcodes::BITCAST => {
                let (Some(basep), Some(res)) = (r.op1(), &r.result) else {
                    return None;
                };
                if let Some((name, base)) = resolve(&self.reg_var, basep.name, basep.value.as_ptr())
                {
                    self.reg_var.insert(res.name, (name, base));
                    let vn = self.graph.var_node(name, base);
                    let rn = self.graph.reg_node(res.name);
                    self.graph.add_edge(vn, rn);
                }
                None
            }
            opcodes::ALLOCA => {
                // Locals are identified by their Alloca (Challenge 2).
                if let Some(res) = &r.result {
                    if let (Name::Sym(s), Some(addr)) = (res.name, res.value.as_ptr()) {
                        self.reg_var.insert(res.name, (s, addr));
                    }
                }
                None
            }
            op if (8..=25).contains(&op)
                || op == opcodes::ICMP
                || op == opcodes::FCMP
                || op == opcodes::ZEXT
                || op == opcodes::SITOFP
                || op == opcodes::FPTOSI =>
            {
                // reg-reg map: link inputs to the result.
                let res = r.result.as_ref()?;
                let rn = self.graph.reg_node(res.name);
                for operand in r.positional() {
                    if operand.is_reg && operand.name != Name::None {
                        let on = self.graph.reg_node(operand.name);
                        self.graph.add_edge(on, rn);
                    }
                }
                None
            }
            opcodes::CALL => {
                let params: Vec<_> = r.params().collect();
                if params.is_empty() {
                    // Form 1 (builtin): treat as arithmetic.
                    if let Some(res) = &r.result {
                        let rn = self.graph.reg_node(res.name);
                        for operand in r.positional().skip(1) {
                            if operand.is_reg && operand.name != Name::None {
                                let on = self.graph.reg_node(operand.name);
                                self.graph.add_edge(on, rn);
                            }
                        }
                    }
                } else {
                    // Form 2: argument/parameter triplets.
                    for (arg, param) in r.positional().skip(1).zip(params.iter()) {
                        if let Some((name, base)) =
                            resolve(&self.reg_var, arg.name, arg.value.as_ptr())
                        {
                            self.reg_var.insert(param.name, (name, base));
                            let vn = self.graph.var_node(name, base);
                            let pn = self.graph.reg_node(param.name);
                            self.graph.add_edge(vn, pn);
                        } else if arg.is_reg && arg.name != Name::None {
                            let an = self.graph.reg_node(arg.name);
                            let pn = self.graph.reg_node(param.name);
                            self.graph.add_edge(an, pn);
                        }
                    }
                    self.call_stack.push(r.result.as_ref().map(|res| res.name));
                }
                None
            }
            opcodes::RET => {
                if let Some(pending) = self.call_stack.pop().flatten() {
                    if let Some(op) = r.op1() {
                        if op.is_reg && op.name != Name::None {
                            let from = self.graph.reg_node(op.name);
                            let to = self.graph.reg_node(pending);
                            self.graph.add_edge(from, to);
                            if let Some(&v) = self.reg_var.get(op.name) {
                                self.reg_var.insert(pending, v);
                            }
                        }
                    }
                }
                None
            }
            _ => None,
        }
    }
}

/// The batch `record_event` filter: only loop-phase accesses and after-loop
/// reads matter to the heuristics.
fn event(a: StreamAnnot, base: u64, elem: Option<u64>, is_write: bool) -> Option<AccessEvent> {
    match (a.phase, is_write) {
        (Phase::Inside, _) | (Phase::After, false) => {}
        _ => return None,
    }
    Some(AccessEvent {
        base,
        elem: elem.unwrap_or(base),
        is_write,
        iter: a.iter,
        phase: a.phase,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionTracker;
    use autocheck_trace::parse_str;

    fn events_of(text: &str, selective: bool) -> (Vec<AccessEvent>, usize, usize) {
        let recs = parse_str(text).unwrap();
        let mut tracker = RegionTracker::new("main", 5, 7);
        let mut ddg = DdgBuilder::new(selective);
        let mut events = Vec::new();
        for r in &recs {
            let a = tracker.annotate(r);
            if let Some(e) = ddg.observe(r, a) {
                events.push(e);
            }
        }
        (events, ddg.graph().node_count(), ddg.graph().edge_count())
    }

    /// sum += a[i] in the loop (the batch ddg test trace).
    const SUM_ARRAY: &str = "\
0,2,main,2:1,0,28,0,
1,64,0,0,,
2,64,0x7f0000000000,1,sum,
0,2,main,2:1,0,29,1,
1,64,0x7f0000000100,1,a,
2,64,0,0,,
r,64,0x7f0000000100,1,0,
0,2,main,2:1,0,28,2,
1,64,5,0,,
2,64,0x7f0000000100,1,0,
0,5,main,5:1,1,27,3,
1,64,0x7f0000000000,1,sum,
r,64,0,1,1,
0,5,main,5:1,1,2,4,
1,1,1,1,9,
0,6,main,6:1,2,29,5,
1,64,0x7f0000000100,1,a,
2,64,0,0,,
r,64,0x7f0000000100,1,2,
0,6,main,6:1,2,27,6,
1,64,0x7f0000000100,1,2,
r,64,5,1,3,
0,6,main,6:1,2,27,7,
1,64,0x7f0000000000,1,sum,
r,64,0,1,4,
0,6,main,6:1,2,8,8,
1,64,0,1,4,
2,64,5,1,3,
r,64,5,1,5,
0,6,main,6:1,2,28,9,
1,64,5,1,5,
2,64,0x7f0000000000,1,sum,
0,5,main,5:1,1,27,10,
1,64,0x7f0000000000,1,sum,
r,64,5,1,6,
0,5,main,5:1,1,2,11,
1,1,0,1,9,
0,9,main,9:1,3,27,12,
1,64,0x7f0000000000,1,sum,
r,64,5,1,7,
";

    #[test]
    fn loop_reads_writes_and_after_loop_read_are_emitted() {
        let (events, _, _) = events_of(SUM_ARRAY, true);
        let sum = 0x7f00_0000_0000u64;
        assert!(events
            .iter()
            .any(|e| e.base == sum && e.is_write && e.phase == Phase::Inside));
        assert!(events
            .iter()
            .any(|e| e.base == sum && !e.is_write && e.phase == Phase::After));
        // Pre-loop stores must NOT surface (the batch record_event filter).
        assert!(events.iter().all(|e| e.phase != Phase::Before));
    }

    #[test]
    fn selective_and_exhaustive_agree() {
        let (sel, sel_nodes, sel_edges) = events_of(SUM_ARRAY, true);
        let (all, all_nodes, all_edges) = events_of(SUM_ARRAY, false);
        assert_eq!(sel, all);
        assert_eq!(sel_nodes, all_nodes);
        assert_eq!(sel_edges, all_edges);
    }

    /// The paper's Mutable-register challenge: a temp reused as a pointer
    /// for two different arrays must be rebound on the fly.
    #[test]
    fn mutable_register_rebinds_on_the_fly() {
        let text = "\
0,2,main,2:1,0,28,0,
1,64,1,0,,
2,64,0x7f0000000000,1,x,
0,2,main,2:1,0,28,1,
1,64,2,0,,
2,64,0x7f0000000100,1,z,
0,5,main,5:1,1,27,2,
1,64,0x7f0000000000,1,x,
r,64,1,1,9,
0,5,main,5:1,1,2,3,
1,1,1,1,9,
0,6,main,6:1,2,29,4,
1,64,0x7f0000000000,1,x,
2,64,0,0,,
r,64,0x7f0000000000,1,8,
0,6,main,6:1,2,28,5,
1,64,7,0,,
2,64,0x7f0000000000,1,8,
0,7,main,7:1,2,29,6,
1,64,0x7f0000000100,1,z,
2,64,0,0,,
r,64,0x7f0000000100,1,8,
0,7,main,7:1,2,28,7,
1,64,9,0,,
2,64,0x7f0000000100,1,8,
0,5,main,5:1,1,27,8,
1,64,0x7f0000000000,1,x,
r,64,1,1,9,
0,5,main,5:1,1,2,9,
1,1,0,1,9,
";
        let (events, _, _) = events_of(text, true);
        let writes = |base: u64| {
            events
                .iter()
                .filter(|e| e.base == base && e.is_write)
                .count()
        };
        assert_eq!(writes(0x7f00_0000_0000), 1, "one write on x");
        assert_eq!(writes(0x7f00_0000_0100), 1, "one write on z");
    }

    /// Fig. 6(b)-style triplet: foo(p) writes through p which aliases a.
    #[test]
    fn call_triplets_attribute_callee_stores_to_caller_vars() {
        let text = "\
0,2,main,2:1,0,29,0,
1,64,0x7f0000000100,1,a,
2,64,0,0,,
r,64,0x7f0000000100,1,0,
0,2,main,2:1,0,28,1,
1,64,1,0,,
2,64,0x7f0000000100,1,0,
0,5,main,5:1,1,27,2,
1,64,0x7f0000000100,1,a,
r,64,1,1,1,
0,5,main,5:1,1,2,3,
1,1,1,1,9,
0,6,main,6:1,2,29,4,
1,64,0x7f0000000100,1,a,
2,64,0,0,,
r,64,0x7f0000000100,1,2,
0,6,main,6:1,2,49,5,
1,64,0x400000,1,foo,
2,64,0x7f0000000100,1,2,
f,64,0x7f0000000100,1,p,
0,1,foo,1:1,0,29,6,
1,64,0x7f0000000100,1,p,
2,64,0,0,,
r,64,0x7f0000000100,1,0,
0,1,foo,1:1,0,28,7,
1,64,9,0,,
2,64,0x7f0000000100,1,0,
0,1,foo,1:1,0,1,8,
0,5,main,5:1,1,27,9,
1,64,0x7f0000000100,1,a,
r,64,9,1,3,
0,5,main,5:1,1,2,10,
1,1,0,1,9,
";
        let (events, _, _) = events_of(text, true);
        let writes: Vec<_> = events
            .iter()
            .filter(|e| e.base == 0x7f00_0000_0100 && e.is_write)
            .collect();
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].phase, Phase::Inside);
    }
}
