//! Property tests for the frontend: the compiler never panics on arbitrary
//! input, and generated well-formed programs always compile and verify.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Total robustness: arbitrary printable input produces `Ok` or a
    /// diagnostic — never a panic.
    #[test]
    fn compiler_is_total_on_arbitrary_input(src in "[ -~\n]{0,200}") {
        let _ = autocheck_minilang::compile(&src);
    }

    /// Near-miss robustness: random mutations of a valid program either
    /// compile or produce a positioned diagnostic.
    #[test]
    fn compiler_is_total_on_mutated_programs(pos_seed in any::<usize>(), ch in "[ -~]") {
        let base = "int main() {\n    int x = 1;\n    for (int i = 0; i < 4; i = i + 1) { x = x + i; }\n    print(x);\n    return 0;\n}\n";
        let mut bytes = base.as_bytes().to_vec();
        let pos = pos_seed % bytes.len();
        bytes[pos] = ch.as_bytes()[0];
        if let Ok(mutated) = String::from_utf8(bytes) {
            match autocheck_minilang::compile(&mutated) {
                Ok(_) => {}
                Err(errs) => prop_assert!(!errs.is_empty()),
            }
        }
    }

    /// Generated straight-line declarations always compile, verify, and
    /// preserve declaration order in the IR.
    #[test]
    fn generated_declarations_compile(names in proptest::collection::btree_set("[a-z][a-z0-9]{0,5}", 1..8)) {
        let mut body = String::new();
        for (i, n) in names.iter().enumerate() {
            body.push_str(&format!("    int {n} = {i};\n"));
        }
        let mut sum = String::from("0");
        for n in &names {
            sum = format!("{sum} + {n}");
        }
        let src = format!("int main() {{\n{body}    print({sum});\n    return 0;\n}}\n");
        let module = autocheck_minilang::compile(&src).unwrap();
        prop_assert!(autocheck_ir::verify_module(&module).is_ok());
        let f = module.function(module.function_by_name("main").unwrap());
        let allocas: Vec<String> = f
            .iter_insts()
            .filter_map(|(_, inst)| match &inst.kind {
                autocheck_ir::InstKind::Alloca { var, .. } => Some(var.clone()),
                _ => None,
            })
            .collect();
        let expected: Vec<String> = names.iter().cloned().collect();
        prop_assert_eq!(allocas, expected);
    }
}
