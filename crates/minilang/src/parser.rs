//! Recursive-descent parser with precedence climbing for expressions.

use crate::ast::*;
use crate::error::CompileError;
use crate::token::{Tok, Token};

/// Parse a token stream into a [`Program`].
pub fn parse(tokens: &[Token]) -> Result<Program, CompileError> {
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn here(&self) -> Pos {
        let t = self.peek();
        Pos {
            line: t.line,
            col: t.col,
        }
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if &self.peek().tok == want {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: &Tok) -> Result<Token, CompileError> {
        if &self.peek().tok == want {
            Ok(self.bump())
        } else {
            let t = self.peek();
            Err(CompileError::at(
                t.line,
                t.col,
                format!("expected `{}`, found `{}`", want, t.tok),
            ))
        }
    }

    fn err_here(&self, msg: impl Into<String>) -> CompileError {
        let t = self.peek();
        CompileError::at(t.line, t.col, msg)
    }

    fn ident(&mut self) -> Result<(String, Pos), CompileError> {
        let pos = self.here();
        match self.peek().tok.clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok((s, pos))
            }
            other => Err(self.err_here(format!("expected identifier, found `{other}`"))),
        }
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut prog = Program::default();
        loop {
            match &self.peek().tok {
                Tok::Eof => break,
                Tok::KwGlobal => prog.globals.push(self.global_decl()?),
                Tok::KwInt | Tok::KwFloat | Tok::KwVoid => prog.funcs.push(self.func_decl()?),
                other => {
                    return Err(self.err_here(format!(
                        "expected `global` or a function definition, found `{other}`"
                    )))
                }
            }
        }
        Ok(prog)
    }

    fn scalar(&mut self) -> Result<Scalar, CompileError> {
        match self.peek().tok {
            Tok::KwInt => {
                self.bump();
                Ok(Scalar::Int)
            }
            Tok::KwFloat => {
                self.bump();
                Ok(Scalar::Float)
            }
            _ => Err(self.err_here("expected `int` or `float`")),
        }
    }

    fn global_decl(&mut self) -> Result<GlobalDecl, CompileError> {
        let pos = self.here();
        self.expect(&Tok::KwGlobal)?;
        let sc = self.scalar()?;
        let (name, _) = self.ident()?;
        let ty = if self.eat(&Tok::LBracket) {
            let n = match self.bump().tok {
                Tok::Int(v) if v > 0 => v as u64,
                other => {
                    return Err(self.err_here(format!(
                        "array size must be a positive integer literal, found `{other}`"
                    )))
                }
            };
            self.expect(&Tok::RBracket)?;
            DeclTy::Array(sc, n)
        } else {
            DeclTy::Scalar(sc)
        };
        let init = if self.eat(&Tok::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(&Tok::Semi)?;
        Ok(GlobalDecl {
            name,
            ty,
            init,
            pos,
        })
    }

    fn func_decl(&mut self) -> Result<FuncDecl, CompileError> {
        let pos = self.here();
        let ret = match self.bump().tok {
            Tok::KwInt => RetTy::Int,
            Tok::KwFloat => RetTy::Float,
            Tok::KwVoid => RetTy::Void,
            other => return Err(self.err_here(format!("expected return type, found `{other}`"))),
        };
        let (name, _) = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                let sc = self.scalar()?;
                let is_ptr_star = self.eat(&Tok::Star);
                let (pname, _) = self.ident()?;
                let is_ptr_brackets = if self.eat(&Tok::LBracket) {
                    self.expect(&Tok::RBracket)?;
                    true
                } else {
                    false
                };
                let ty = if is_ptr_star || is_ptr_brackets {
                    ParamTy::Ptr(sc)
                } else {
                    ParamTy::Scalar(sc)
                };
                params.push(ParamDecl { name: pname, ty });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        let body = self.block()?;
        Ok(FuncDecl {
            name,
            params,
            ret,
            body,
            pos,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.peek().tok == Tok::Eof {
                return Err(self.err_here("unclosed block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.here();
        match &self.peek().tok {
            Tok::KwInt | Tok::KwFloat => {
                let s = self.decl_stmt()?;
                self.expect(&Tok::Semi)?;
                Ok(s)
            }
            Tok::KwIf => self.if_stmt(),
            Tok::KwWhile => self.while_stmt(),
            Tok::KwFor => self.for_stmt(),
            Tok::KwReturn => {
                self.bump();
                let value = if self.peek().tok == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Return(value),
                    pos,
                })
            }
            Tok::LBrace => {
                // Flatten nested bare blocks into an if(1)-style sequence is
                // unnecessary; treat as statements inline by wrapping in an
                // always-true if. Simpler: disallow bare blocks.
                Err(self.err_here("bare blocks are not supported; use `if`/loops"))
            }
            Tok::Ident(_) if matches!(self.peek2(), Tok::Assign | Tok::LBracket) => {
                let s = self.assign_stmt()?;
                self.expect(&Tok::Semi)?;
                Ok(s)
            }
            _ => {
                let e = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::ExprStmt(e),
                    pos,
                })
            }
        }
    }

    /// `int x`, `int x = e`, `int a[10]`, `float y = 0.5` — no trailing `;`.
    fn decl_stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.here();
        let sc = self.scalar()?;
        let (name, _) = self.ident()?;
        if self.eat(&Tok::LBracket) {
            let n = match self.bump().tok {
                Tok::Int(v) if v > 0 => v as u64,
                other => {
                    return Err(self.err_here(format!(
                        "array size must be a positive integer literal, found `{other}`"
                    )))
                }
            };
            self.expect(&Tok::RBracket)?;
            Ok(Stmt {
                kind: StmtKind::Decl {
                    name,
                    ty: DeclTy::Array(sc, n),
                    init: None,
                },
                pos,
            })
        } else {
            let init = if self.eat(&Tok::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            Ok(Stmt {
                kind: StmtKind::Decl {
                    name,
                    ty: DeclTy::Scalar(sc),
                    init,
                },
                pos,
            })
        }
    }

    /// `x = e` or `a[i] = e` — no trailing `;`.
    fn assign_stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.here();
        let (name, _) = self.ident()?;
        let lhs = if self.eat(&Tok::LBracket) {
            let idx = self.expr()?;
            self.expect(&Tok::RBracket)?;
            LValue::Index(name, Box::new(idx))
        } else {
            LValue::Var(name)
        };
        self.expect(&Tok::Assign)?;
        let rhs = self.expr()?;
        Ok(Stmt {
            kind: StmtKind::Assign { lhs, rhs },
            pos,
        })
    }

    fn if_stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.here();
        self.expect(&Tok::KwIf)?;
        self.expect(&Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(&Tok::RParen)?;
        let then_body = self.block()?;
        let else_body = if self.eat(&Tok::KwElse) {
            if self.peek().tok == Tok::KwIf {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt {
            kind: StmtKind::If {
                cond,
                then_body,
                else_body,
            },
            pos,
        })
    }

    fn while_stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.here();
        self.expect(&Tok::KwWhile)?;
        self.expect(&Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(&Tok::RParen)?;
        let body = self.block()?;
        Ok(Stmt {
            kind: StmtKind::While { cond, body },
            pos,
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.here();
        self.expect(&Tok::KwFor)?;
        self.expect(&Tok::LParen)?;
        let init = if self.peek().tok == Tok::Semi {
            None
        } else if matches!(self.peek().tok, Tok::KwInt | Tok::KwFloat) {
            Some(Box::new(self.decl_stmt()?))
        } else {
            Some(Box::new(self.assign_stmt()?))
        };
        self.expect(&Tok::Semi)?;
        let cond = if self.peek().tok == Tok::Semi {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(&Tok::Semi)?;
        let step = if self.peek().tok == Tok::RParen {
            None
        } else {
            Some(Box::new(self.assign_stmt()?))
        };
        self.expect(&Tok::RParen)?;
        let body = self.block()?;
        Ok(Stmt {
            kind: StmtKind::For {
                init,
                cond,
                step,
                body,
            },
            pos,
        })
    }

    // ----- expressions (precedence climbing) -----

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.bin_expr(0)
    }

    fn bin_expr(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek().tok {
                Tok::OrOr => (BinOpKind::Or, 1),
                Tok::AndAnd => (BinOpKind::And, 2),
                Tok::EqEq => (BinOpKind::Eq, 3),
                Tok::NotEq => (BinOpKind::Ne, 3),
                Tok::Lt => (BinOpKind::Lt, 4),
                Tok::Le => (BinOpKind::Le, 4),
                Tok::Gt => (BinOpKind::Gt, 4),
                Tok::Ge => (BinOpKind::Ge, 4),
                Tok::Plus => (BinOpKind::Add, 5),
                Tok::Minus => (BinOpKind::Sub, 5),
                Tok::Star => (BinOpKind::Mul, 6),
                Tok::Slash => (BinOpKind::Div, 6),
                Tok::Percent => (BinOpKind::Rem, 6),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let pos = self.here();
            self.bump();
            let rhs = self.bin_expr(prec + 1)?;
            lhs = Expr {
                kind: ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)),
                pos,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let pos = self.here();
        if self.eat(&Tok::Minus) {
            let e = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::Neg(Box::new(e)),
                pos,
            });
        }
        if self.eat(&Tok::Not) {
            let e = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::Not(Box::new(e)),
                pos,
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let pos = self.here();
        match self.peek().tok.clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::IntLit(v),
                    pos,
                })
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::FloatLit(v),
                    pos,
                })
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            // Cast pseudo-functions `int(x)` / `float(x)`.
            Tok::KwInt if *self.peek2() == Tok::LParen => {
                self.bump();
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(Expr {
                    kind: ExprKind::Call("int".to_string(), vec![e]),
                    pos,
                })
            }
            Tok::KwFloat if *self.peek2() == Tok::LParen => {
                self.bump();
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(Expr {
                    kind: ExprKind::Call("float".to_string(), vec![e]),
                    pos,
                })
            }
            Tok::Ident(name) => {
                self.bump();
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen)?;
                    }
                    Ok(Expr {
                        kind: ExprKind::Call(name, args),
                        pos,
                    })
                } else if self.eat(&Tok::LBracket) {
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    Ok(Expr {
                        kind: ExprKind::Index(name, Box::new(idx)),
                        pos,
                    })
                } else {
                    Ok(Expr {
                        kind: ExprKind::Var(name),
                        pos,
                    })
                }
            }
            other => Err(self.err_here(format!("expected expression, found `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_fig4_example_shape() {
        let src = r#"
void foo(int* p, int* q) {
    for (int i = 0; i < 10; i = i + 1) {
        q[i] = p[i] * 2;
    }
}

int main() {
    int a[10];
    int b[10];
    int sum = 0;
    int s = 0;
    int r = 1;
    for (int i = 0; i < 10; i = i + 1) {
        a[i] = 0;
        b[i] = 0;
    }
    for (int it = 0; it < 10; it = it + 1) {
        int m;
        s = it + 1;
        a[it] = s * r;
        foo(a, b);
        r = r + 1;
        m = a[it] + b[it];
        sum = m;
    }
    print(sum);
    return 0;
}
"#;
        let prog = parse_src(src);
        assert_eq!(prog.funcs.len(), 2);
        assert_eq!(prog.funcs[0].name, "foo");
        assert_eq!(prog.funcs[0].params.len(), 2);
        assert_eq!(prog.funcs[0].params[0].ty, ParamTy::Ptr(Scalar::Int));
        assert_eq!(prog.funcs[1].name, "main");
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let prog = parse_src("int main() { int x = 1 + 2 * 3; return x; }");
        let StmtKind::Decl { init: Some(e), .. } = &prog.funcs[0].body[0].kind else {
            panic!()
        };
        let ExprKind::Bin(BinOpKind::Add, _, rhs) = &e.kind else {
            panic!("expected top-level add, got {e:?}")
        };
        assert!(matches!(rhs.kind, ExprKind::Bin(BinOpKind::Mul, _, _)));
    }

    #[test]
    fn comparison_below_logical() {
        let prog = parse_src("int main() { int x = 0; if (x < 1 && x >= 0) { x = 2; } return x; }");
        let StmtKind::If { cond, .. } = &prog.funcs[0].body[1].kind else {
            panic!()
        };
        assert!(matches!(cond.kind, ExprKind::Bin(BinOpKind::And, _, _)));
    }

    #[test]
    fn parses_globals_with_init() {
        let prog =
            parse_src("global float xnt = 1.5;\nglobal int sums[8];\nint main() { return 0; }");
        assert_eq!(prog.globals.len(), 2);
        assert_eq!(prog.globals[0].ty, DeclTy::Scalar(Scalar::Float));
        assert_eq!(prog.globals[1].ty, DeclTy::Array(Scalar::Int, 8));
    }

    #[test]
    fn parses_while_and_else_if() {
        let prog = parse_src(
            "int main() { int x = 0; while (x < 3) { if (x == 0) { x = 1; } else if (x == 1) { x = 2; } else { x = 3; } } return x; }",
        );
        let StmtKind::While { body, .. } = &prog.funcs[0].body[1].kind else {
            panic!()
        };
        let StmtKind::If { else_body, .. } = &body[0].kind else {
            panic!()
        };
        assert!(matches!(else_body[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn cast_pseudo_functions() {
        let prog = parse_src("int main() { float y = float(3); int z = int(y); return z; }");
        let StmtKind::Decl { init: Some(e), .. } = &prog.funcs[0].body[0].kind else {
            panic!()
        };
        assert!(matches!(&e.kind, ExprKind::Call(n, _) if n == "float"));
    }

    #[test]
    fn statement_positions_use_first_token() {
        let src = "int main() {\n    int x = 1;\n    x = x + 1;\n    return x;\n}\n";
        let prog = parse_src(src);
        assert_eq!(prog.funcs[0].body[0].pos.line, 2);
        assert_eq!(prog.funcs[0].body[1].pos.line, 3);
        assert_eq!(prog.funcs[0].body[2].pos.line, 4);
    }

    #[test]
    fn error_messages_have_positions() {
        let toks = lex("int main() { int = 3; }").unwrap();
        let err = parse(&toks).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("identifier"));
    }

    #[test]
    fn for_with_empty_slots() {
        let prog =
            parse_src("int main() { int i = 0; for (;;) { i = i + 1; return i; } return 0; }");
        let StmtKind::For {
            init, cond, step, ..
        } = &prog.funcs[0].body[1].kind
        else {
            panic!()
        };
        assert!(init.is_none() && cond.is_none() && step.is_none());
    }
}
