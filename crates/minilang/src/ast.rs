//! Abstract syntax tree.

/// Source position.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Scalar element types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scalar {
    /// `int` (i64).
    Int,
    /// `float` (f64).
    Float,
}

/// Declared variable types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeclTy {
    /// A scalar.
    Scalar(Scalar),
    /// A fixed-size array.
    Array(Scalar, u64),
}

/// Parameter types: scalars or pointers (array parameters decay).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParamTy {
    /// Read-only scalar parameter.
    Scalar(Scalar),
    /// Pointer parameter (`int* p` / `int p[]`).
    Ptr(Scalar),
}

/// Function return types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetTy {
    /// `void`.
    Void,
    /// `int`.
    Int,
    /// `float`.
    Float,
}

/// Binary operators (surface level).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOpKind {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOpKind {
    /// True for `== != < <= > >=`.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOpKind::Eq
                | BinOpKind::Ne
                | BinOpKind::Lt
                | BinOpKind::Le
                | BinOpKind::Gt
                | BinOpKind::Ge
        )
    }

    /// True for `&&` / `||`.
    pub fn is_logical(&self) -> bool {
        matches!(self, BinOpKind::And | BinOpKind::Or)
    }
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Variable reference.
    Var(String),
    /// Array element `name[index]`.
    Index(String, Box<Expr>),
    /// Unary negation `-e`.
    Neg(Box<Expr>),
    /// Logical not `!e`.
    Not(Box<Expr>),
    /// Binary operation.
    Bin(BinOpKind, Box<Expr>, Box<Expr>),
    /// Call `name(args...)` — user function, builtin, or the cast
    /// pseudo-functions `int(x)` / `float(x)`.
    Call(String, Vec<Expr>),
}

/// An expression with position.
#[derive(Clone, Debug, PartialEq)]
pub struct Expr {
    /// Payload.
    pub kind: ExprKind,
    /// Position of the expression's first token.
    pub pos: Pos,
}

/// Assignment targets.
#[derive(Clone, Debug, PartialEq)]
pub enum LValue {
    /// Scalar variable.
    Var(String),
    /// Array element.
    Index(String, Box<Expr>),
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum StmtKind {
    /// Variable declaration with optional initializer.
    Decl {
        /// Declared name.
        name: String,
        /// Declared type.
        ty: DeclTy,
        /// Optional initializer (scalars only).
        init: Option<Expr>,
    },
    /// Assignment.
    Assign {
        /// Target.
        lhs: LValue,
        /// Source expression.
        rhs: Expr,
    },
    /// `if` with optional `else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch.
        else_body: Vec<Stmt>,
    },
    /// `while` loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for` loop. Init/step are restricted to declarations/assignments,
    /// like the benchmarks use.
    For {
        /// Init statement.
        init: Option<Box<Stmt>>,
        /// Condition (defaults to true when omitted).
        cond: Option<Expr>,
        /// Step statement.
        step: Option<Box<Stmt>>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return`.
    Return(Option<Expr>),
    /// Expression statement (void calls).
    ExprStmt(Expr),
}

/// A statement with position.
#[derive(Clone, Debug, PartialEq)]
pub struct Stmt {
    /// Payload.
    pub kind: StmtKind,
    /// Position of the statement's first token.
    pub pos: Pos,
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamDecl {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: ParamTy,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct FuncDecl {
    /// Name.
    pub name: String,
    /// Parameters.
    pub params: Vec<ParamDecl>,
    /// Return type.
    pub ret: RetTy,
    /// Body.
    pub body: Vec<Stmt>,
    /// Position of the definition.
    pub pos: Pos,
}

/// A global variable declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct GlobalDecl {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: DeclTy,
    /// Optional scalar initializer literal.
    pub init: Option<Expr>,
    /// Position.
    pub pos: Pos,
}

/// A whole program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// Globals in declaration order.
    pub globals: Vec<GlobalDecl>,
    /// Functions in definition order.
    pub funcs: Vec<FuncDecl>,
}
