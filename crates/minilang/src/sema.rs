//! Semantic analysis: scoping and type checking.
//!
//! MiniLang is strict about numeric types (no implicit `int`/`float`
//! conversion) so that the lowering can pick integer vs. float opcodes
//! mechanically — the same property Clang relies on after its implicit
//! conversions have been made explicit in the AST.

use crate::ast::*;
use crate::error::CompileError;
use std::collections::HashMap;

/// The type of an expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExprTy {
    /// `int`.
    Int,
    /// `float`.
    Float,
    /// Comparison/logical result.
    Bool,
    /// Pointer to int (array parameter or decayed array).
    IntPtr,
    /// Pointer to float.
    FloatPtr,
    /// `int` array of known size.
    IntArr(u64),
    /// `float` array of known size.
    FloatArr(u64),
    /// No value.
    Void,
}

impl ExprTy {
    fn of_decl(d: &DeclTy) -> ExprTy {
        match d {
            DeclTy::Scalar(Scalar::Int) => ExprTy::Int,
            DeclTy::Scalar(Scalar::Float) => ExprTy::Float,
            DeclTy::Array(Scalar::Int, n) => ExprTy::IntArr(*n),
            DeclTy::Array(Scalar::Float, n) => ExprTy::FloatArr(*n),
        }
    }

    fn of_param(p: &ParamTy) -> ExprTy {
        match p {
            ParamTy::Scalar(Scalar::Int) => ExprTy::Int,
            ParamTy::Scalar(Scalar::Float) => ExprTy::Float,
            ParamTy::Ptr(Scalar::Int) => ExprTy::IntPtr,
            ParamTy::Ptr(Scalar::Float) => ExprTy::FloatPtr,
        }
    }

    /// Element type for indexable types.
    fn elem(&self) -> Option<ExprTy> {
        match self {
            ExprTy::IntPtr | ExprTy::IntArr(_) => Some(ExprTy::Int),
            ExprTy::FloatPtr | ExprTy::FloatArr(_) => Some(ExprTy::Float),
            _ => None,
        }
    }

    fn is_indexable(&self) -> bool {
        self.elem().is_some()
    }

    fn display(&self) -> &'static str {
        match self {
            ExprTy::Int => "int",
            ExprTy::Float => "float",
            ExprTy::Bool => "bool",
            ExprTy::IntPtr => "int*",
            ExprTy::FloatPtr => "float*",
            ExprTy::IntArr(_) => "int[]",
            ExprTy::FloatArr(_) => "float[]",
            ExprTy::Void => "void",
        }
    }
}

/// Information about one variable binding.
#[derive(Clone, Debug)]
struct Binding {
    ty: ExprTy,
    /// Scalar parameters are read-only.
    assignable: bool,
}

struct Scopes {
    stack: Vec<HashMap<String, Binding>>,
}

impl Scopes {
    fn new() -> Self {
        Scopes {
            stack: vec![HashMap::new()],
        }
    }

    fn push(&mut self) {
        self.stack.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.stack.pop();
    }

    fn declare(&mut self, name: &str, b: Binding) -> bool {
        self.stack
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), b)
            .is_none()
    }

    fn lookup(&self, name: &str) -> Option<&Binding> {
        self.stack.iter().rev().find_map(|s| s.get(name))
    }
}

struct FuncSig {
    params: Vec<ParamTy>,
    ret: RetTy,
}

/// Check `prog`; returns all diagnostics found.
pub fn check(prog: &Program) -> Result<(), Vec<CompileError>> {
    let mut errs = Vec::new();
    // Pass 1: signatures and globals.
    let mut funcs: HashMap<String, FuncSig> = HashMap::new();
    for f in &prog.funcs {
        if autocheck_ir::Builtin::by_name(&f.name).is_some() || f.name == "int" || f.name == "float"
        {
            errs.push(CompileError::at(
                f.pos.line,
                f.pos.col,
                format!("`{}` is a reserved builtin name", f.name),
            ));
        }
        if funcs
            .insert(
                f.name.clone(),
                FuncSig {
                    params: f.params.iter().map(|p| p.ty.clone()).collect(),
                    ret: f.ret,
                },
            )
            .is_some()
        {
            errs.push(CompileError::at(
                f.pos.line,
                f.pos.col,
                format!("duplicate function `{}`", f.name),
            ));
        }
    }
    let mut globals: HashMap<String, ExprTy> = HashMap::new();
    for g in &prog.globals {
        match (&g.init, &g.ty) {
            (None, _) => {}
            (Some(e), DeclTy::Scalar(sc)) => {
                let ok = matches!(
                    (&e.kind, sc),
                    (ExprKind::IntLit(_), Scalar::Int) | (ExprKind::FloatLit(_), Scalar::Float)
                ) || matches!(
                    (&e.kind, sc),
                    (ExprKind::Neg(inner), Scalar::Int) if matches!(inner.kind, ExprKind::IntLit(_))
                ) || matches!(
                    (&e.kind, sc),
                    (ExprKind::Neg(inner), Scalar::Float) if matches!(inner.kind, ExprKind::FloatLit(_))
                );
                if !ok {
                    errs.push(CompileError::at(
                        g.pos.line,
                        g.pos.col,
                        "global initializers must be literals of the declared type",
                    ));
                }
            }
            (Some(_), DeclTy::Array(..)) => {
                errs.push(CompileError::at(
                    g.pos.line,
                    g.pos.col,
                    "array globals cannot have initializers (they are zero-initialized)",
                ));
            }
        }
        if globals
            .insert(g.name.clone(), ExprTy::of_decl(&g.ty))
            .is_some()
        {
            errs.push(CompileError::at(
                g.pos.line,
                g.pos.col,
                format!("duplicate global `{}`", g.name),
            ));
        }
    }

    // Pass 2: function bodies.
    for f in &prog.funcs {
        let mut ck = Checker {
            funcs: &funcs,
            globals: &globals,
            scopes: Scopes::new(),
            ret: f.ret,
            errs: &mut errs,
        };
        for p in &f.params {
            let assignable = matches!(p.ty, ParamTy::Ptr(_));
            if !ck.scopes.declare(
                &p.name,
                Binding {
                    ty: ExprTy::of_param(&p.ty),
                    assignable,
                },
            ) {
                ck.errs.push(CompileError::at(
                    f.pos.line,
                    f.pos.col,
                    format!("duplicate parameter `{}`", p.name),
                ));
            }
        }
        ck.block(&f.body);
    }

    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

struct Checker<'a> {
    funcs: &'a HashMap<String, FuncSig>,
    globals: &'a HashMap<String, ExprTy>,
    scopes: Scopes,
    ret: RetTy,
    errs: &'a mut Vec<CompileError>,
}

impl<'a> Checker<'a> {
    fn err(&mut self, pos: Pos, msg: impl Into<String>) {
        self.errs.push(CompileError::at(pos.line, pos.col, msg));
    }

    fn block(&mut self, stmts: &[Stmt]) {
        self.scopes.push();
        for s in stmts {
            self.stmt(s);
        }
        self.scopes.pop();
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl { name, ty, init } => {
                if let Some(e) = init {
                    let et = self.expr(e);
                    let want = ExprTy::of_decl(ty);
                    if !self.assign_compatible(want, et) {
                        self.err(
                            s.pos,
                            format!(
                                "cannot initialize `{name}` ({}) from {}",
                                want.display(),
                                et.display()
                            ),
                        );
                    }
                }
                if !self.scopes.declare(
                    name,
                    Binding {
                        ty: ExprTy::of_decl(ty),
                        assignable: true,
                    },
                ) {
                    self.err(s.pos, format!("duplicate variable `{name}` in this scope"));
                }
            }
            StmtKind::Assign { lhs, rhs } => {
                let rt = self.expr(rhs);
                match lhs {
                    LValue::Var(name) => match self.lookup(name) {
                        Some(b) => {
                            if !b.assignable {
                                self.err(
                                    s.pos,
                                    format!("scalar parameter `{name}` is read-only in MiniLang"),
                                );
                            } else if matches!(b.ty, ExprTy::IntArr(_) | ExprTy::FloatArr(_)) {
                                self.err(s.pos, format!("cannot assign to array `{name}`"));
                            } else if !self.assign_compatible(b.ty, rt) {
                                self.err(
                                    s.pos,
                                    format!(
                                        "cannot assign {} to `{name}` ({})",
                                        rt.display(),
                                        b.ty.display()
                                    ),
                                );
                            }
                        }
                        None => self.err(s.pos, format!("undeclared variable `{name}`")),
                    },
                    LValue::Index(name, idx) => {
                        let it = self.expr(idx);
                        if it != ExprTy::Int {
                            self.err(idx.pos, "array index must be int");
                        }
                        match self.lookup(name) {
                            Some(b) if b.ty.is_indexable() => {
                                let want = b.ty.elem().expect("indexable");
                                if !self.assign_compatible(want, rt) {
                                    self.err(
                                        s.pos,
                                        format!(
                                            "cannot store {} into `{name}[]` ({})",
                                            rt.display(),
                                            want.display()
                                        ),
                                    );
                                }
                            }
                            Some(_) => self.err(s.pos, format!("`{name}` is not indexable")),
                            None => self.err(s.pos, format!("undeclared variable `{name}`")),
                        }
                    }
                }
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                self.cond(cond);
                self.block(then_body);
                self.block(else_body);
            }
            StmtKind::While { cond, body } => {
                self.cond(cond);
                self.block(body);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push();
                if let Some(i) = init {
                    self.stmt(i);
                }
                if let Some(c) = cond {
                    self.cond(c);
                }
                if let Some(st) = step {
                    self.stmt(st);
                }
                self.block(body);
                self.scopes.pop();
            }
            StmtKind::Return(v) => {
                let got = v.as_ref().map(|e| self.expr(e));
                match (self.ret, got) {
                    (RetTy::Void, None) => {}
                    (RetTy::Int, Some(t)) if t == ExprTy::Int || t == ExprTy::Bool => {}
                    (RetTy::Float, Some(ExprTy::Float)) => {}
                    (want, got) => self.err(
                        s.pos,
                        format!(
                            "return type mismatch: function returns {:?}, got {}",
                            want,
                            got.map(|t| t.display()).unwrap_or("nothing")
                        ),
                    ),
                }
            }
            StmtKind::ExprStmt(e) => {
                self.expr(e);
            }
        }
    }

    fn cond(&mut self, e: &Expr) {
        let t = self.expr(e);
        if !matches!(t, ExprTy::Bool | ExprTy::Int) {
            self.err(
                e.pos,
                format!("condition must be bool or int, got {}", t.display()),
            );
        }
    }

    /// `bool` stores into `int` via zero-extension (C semantics).
    fn assign_compatible(&self, want: ExprTy, got: ExprTy) -> bool {
        want == got || (want == ExprTy::Int && got == ExprTy::Bool)
    }

    fn lookup(&self, name: &str) -> Option<Binding> {
        self.scopes.lookup(name).cloned().or_else(|| {
            self.globals.get(name).map(|t| Binding {
                ty: *t,
                assignable: true,
            })
        })
    }

    fn expr(&mut self, e: &Expr) -> ExprTy {
        match &e.kind {
            ExprKind::IntLit(_) => ExprTy::Int,
            ExprKind::FloatLit(_) => ExprTy::Float,
            ExprKind::Var(name) => match self.lookup(name) {
                Some(b) => b.ty,
                None => {
                    self.err(e.pos, format!("undeclared variable `{name}`"));
                    ExprTy::Int
                }
            },
            ExprKind::Index(name, idx) => {
                let it = self.expr(idx);
                if it != ExprTy::Int {
                    self.err(idx.pos, "array index must be int");
                }
                match self.lookup(name) {
                    Some(b) if b.ty.is_indexable() => b.ty.elem().expect("indexable"),
                    Some(b) => {
                        self.err(
                            e.pos,
                            format!("`{name}` ({}) is not indexable", b.ty.display()),
                        );
                        ExprTy::Int
                    }
                    None => {
                        self.err(e.pos, format!("undeclared variable `{name}`"));
                        ExprTy::Int
                    }
                }
            }
            ExprKind::Neg(inner) => {
                let t = self.expr(inner);
                if !matches!(t, ExprTy::Int | ExprTy::Float) {
                    self.err(e.pos, format!("cannot negate {}", t.display()));
                    return ExprTy::Int;
                }
                t
            }
            ExprKind::Not(inner) => {
                let t = self.expr(inner);
                if !matches!(t, ExprTy::Bool | ExprTy::Int) {
                    self.err(e.pos, format!("cannot apply `!` to {}", t.display()));
                }
                ExprTy::Bool
            }
            ExprKind::Bin(op, l, r) => {
                let lt = self.expr(l);
                let rt = self.expr(r);
                if op.is_logical() {
                    for (t, side) in [(lt, l), (rt, r)] {
                        if !matches!(t, ExprTy::Bool | ExprTy::Int) {
                            self.err(
                                side.pos,
                                format!("logical operand must be bool or int, got {}", t.display()),
                            );
                        }
                    }
                    return ExprTy::Bool;
                }
                if op.is_comparison() {
                    if !((lt == ExprTy::Int && rt == ExprTy::Int)
                        || (lt == ExprTy::Float && rt == ExprTy::Float))
                    {
                        self.err(
                            e.pos,
                            format!(
                                "comparison operands must both be int or both float, got {} and {}",
                                lt.display(),
                                rt.display()
                            ),
                        );
                    }
                    return ExprTy::Bool;
                }
                // Arithmetic.
                match (lt, rt) {
                    (ExprTy::Int, ExprTy::Int) => ExprTy::Int,
                    (ExprTy::Float, ExprTy::Float) => {
                        if *op == BinOpKind::Rem {
                            self.err(e.pos, "`%` requires int operands");
                        }
                        ExprTy::Float
                    }
                    _ => {
                        self.err(
                            e.pos,
                            format!(
                                "arithmetic operands must both be int or both float, got {} and {} (use int()/float())",
                                lt.display(),
                                rt.display()
                            ),
                        );
                        ExprTy::Int
                    }
                }
            }
            ExprKind::Call(name, args) => self.call(e.pos, name, args),
        }
    }

    fn call(&mut self, pos: Pos, name: &str, args: &[Expr]) -> ExprTy {
        let arg_tys: Vec<ExprTy> = args.iter().map(|a| self.expr(a)).collect();
        // Casts.
        if name == "int" || name == "float" {
            if args.len() != 1 {
                self.err(pos, format!("`{name}()` takes exactly one argument"));
                return if name == "int" {
                    ExprTy::Int
                } else {
                    ExprTy::Float
                };
            }
            let ok = match name {
                "int" => arg_tys[0] == ExprTy::Float || arg_tys[0] == ExprTy::Bool,
                _ => arg_tys[0] == ExprTy::Int,
            };
            if !ok {
                self.err(
                    pos,
                    format!("invalid cast `{name}({})`", arg_tys[0].display()),
                );
            }
            return if name == "int" {
                ExprTy::Int
            } else {
                ExprTy::Float
            };
        }
        // Builtins.
        if let Some(b) = autocheck_ir::Builtin::by_name(name) {
            if b == autocheck_ir::Builtin::Print {
                if args.len() != 1 || !matches!(arg_tys[0], ExprTy::Int | ExprTy::Float) {
                    self.err(pos, "print takes one int or float argument");
                }
                return ExprTy::Void;
            }
            let want = b.param_types();
            if want.len() != args.len() {
                self.err(
                    pos,
                    format!(
                        "`{name}` takes {} argument(s), got {}",
                        want.len(),
                        args.len()
                    ),
                );
                return builtin_ret(b);
            }
            for (i, w) in want.iter().enumerate() {
                let ok = match w {
                    autocheck_ir::Type::F64 => arg_tys[i] == ExprTy::Float,
                    autocheck_ir::Type::I64 => arg_tys[i] == ExprTy::Int,
                    _ => false,
                };
                if !ok {
                    self.err(
                        pos,
                        format!("argument {} of `{name}` has the wrong type", i + 1),
                    );
                }
            }
            return builtin_ret(b);
        }
        // User functions.
        match self.funcs.get(name) {
            Some(sig) => {
                if sig.params.len() != args.len() {
                    self.err(
                        pos,
                        format!(
                            "`{name}` takes {} argument(s), got {}",
                            sig.params.len(),
                            args.len()
                        ),
                    );
                } else {
                    for (i, p) in sig.params.iter().enumerate() {
                        let ok = match p {
                            ParamTy::Scalar(Scalar::Int) => arg_tys[i] == ExprTy::Int,
                            ParamTy::Scalar(Scalar::Float) => arg_tys[i] == ExprTy::Float,
                            ParamTy::Ptr(Scalar::Int) => {
                                matches!(arg_tys[i], ExprTy::IntPtr | ExprTy::IntArr(_))
                            }
                            ParamTy::Ptr(Scalar::Float) => {
                                matches!(arg_tys[i], ExprTy::FloatPtr | ExprTy::FloatArr(_))
                            }
                        };
                        if !ok {
                            self.err(
                                pos,
                                format!(
                                    "argument {} of `{name}`: expected {:?}, got {}",
                                    i + 1,
                                    p,
                                    arg_tys[i].display()
                                ),
                            );
                        }
                    }
                }
                match sig.ret {
                    RetTy::Void => ExprTy::Void,
                    RetTy::Int => ExprTy::Int,
                    RetTy::Float => ExprTy::Float,
                }
            }
            None => {
                self.err(pos, format!("unknown function `{name}`"));
                ExprTy::Int
            }
        }
    }
}

fn builtin_ret(b: autocheck_ir::Builtin) -> ExprTy {
    match b.ret_type() {
        autocheck_ir::Type::Void => ExprTy::Void,
        autocheck_ir::Type::I64 => ExprTy::Int,
        _ => ExprTy::Float,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<(), Vec<CompileError>> {
        check(&parse(&lex(src).unwrap()).unwrap())
    }

    fn first_err(src: &str) -> String {
        check_src(src).unwrap_err()[0].message.clone()
    }

    #[test]
    fn accepts_well_typed_program() {
        assert!(check_src(
            r#"
global float shift = 0.5;
float norm(float* v, int n) {
    float s = 0.0;
    for (int i = 0; i < n; i = i + 1) { s = s + v[i] * v[i]; }
    return sqrt(s);
}
int main() {
    float x[4];
    for (int i = 0; i < 4; i = i + 1) { x[i] = float(i); }
    print(norm(x, 4) + shift);
    return 0;
}
"#
        )
        .is_ok());
    }

    #[test]
    fn rejects_undeclared_variable() {
        assert!(first_err("int main() { x = 1; return 0; }").contains("undeclared"));
    }

    #[test]
    fn rejects_int_float_mixing() {
        assert!(first_err("int main() { int x = 1 + 2.0; return x; }").contains("arithmetic"));
    }

    #[test]
    fn rejects_float_index() {
        assert!(first_err("int main() { int a[4]; a[1.5] = 0; return 0; }").contains("index"));
    }

    #[test]
    fn rejects_assignment_to_scalar_param() {
        assert!(
            first_err("void f(int n) { n = 3; } int main() { f(1); return 0; }")
                .contains("read-only")
        );
    }

    #[test]
    fn bool_assigns_to_int() {
        assert!(check_src("int main() { int done = 0; done = 3 > 2; return done; }").is_ok());
    }

    #[test]
    fn rejects_wrong_arity_call() {
        assert!(first_err(
            "void f(int* p) { p[0] = 1; } int main() { int a[2]; f(a, a); return 0; }"
        )
        .contains("argument"));
    }

    #[test]
    fn rejects_scalar_where_pointer_expected() {
        assert!(first_err(
            "void f(int* p) { p[0] = 1; } int main() { int x = 0; f(x); return 0; }"
        )
        .contains("argument 1"));
    }

    #[test]
    fn rejects_duplicate_local_in_same_scope() {
        assert!(first_err("int main() { int x = 0; int x = 1; return x; }").contains("duplicate"));
    }

    #[test]
    fn allows_shadowing_in_inner_scope() {
        assert!(check_src(
            "int main() { int x = 0; for (int i = 0; i < 2; i = i + 1) { int x = 5; x = x + 1; } return x; }"
        )
        .is_ok());
    }

    #[test]
    fn rejects_return_mismatch() {
        assert!(
            first_err("float f() { return 1; } int main() { return 0; }").contains("return type")
        );
    }

    #[test]
    fn rejects_reserved_builtin_redefinition() {
        assert!(first_err("void print(int x) { } int main() { return 0; }").contains("reserved"));
    }

    #[test]
    fn rejects_float_rem() {
        assert!(first_err("int main() { float x = 1.0 % 2.0; return 0; }").contains("%"));
    }

    #[test]
    fn rejects_array_global_initializer() {
        assert!(first_err("global int a[4] = 3;\nint main() { return 0; }")
            .contains("zero-initialized"));
    }

    #[test]
    fn globals_visible_in_functions() {
        assert!(check_src(
            "global int counter;\nint main() { counter = counter + 1; return counter; }"
        )
        .is_ok());
    }

    #[test]
    fn negative_global_initializers_allowed() {
        assert!(
            check_src("global float s = -1.5;\nglobal int k = -3;\nint main() { return 0; }")
                .is_ok()
        );
    }
}
