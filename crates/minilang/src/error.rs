//! Compile-time diagnostics.

use std::fmt;

/// A diagnostic with source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based line (0 for internal errors with no position).
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Description.
    pub message: String,
}

impl CompileError {
    /// Error at a position.
    pub fn at(line: u32, col: u32, message: impl Into<String>) -> Self {
        CompileError {
            line,
            col,
            message: message.into(),
        }
    }

    /// Internal (positionless) error.
    pub fn internal(message: impl Into<String>) -> Self {
        CompileError {
            line: 0,
            col: 0,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "error: {}", self.message)
        } else {
            write!(
                f,
                "error at line {}:{}: {}",
                self.line, self.col, self.message
            )
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = CompileError::at(7, 3, "unexpected token");
        assert_eq!(e.to_string(), "error at line 7:3: unexpected token");
        let i = CompileError::internal("oops");
        assert_eq!(i.to_string(), "error: oops");
    }
}
