//! Lowering from the AST to the mini-IR, in the style of `clang -O0`.
//!
//! * every local is an `alloca` **hoisted to the entry block** with no
//!   source location (LLVM-Tracer prints `-1` for these, paper Fig. 6(c));
//!   initializers stay at the declaration site as ordinary stores;
//! * every variable access is a `Load`/`Store` through the alloca (or
//!   global) — no mem2reg, so the reg-var map sees exactly the shapes the
//!   paper describes;
//! * array arguments decay to pointers through a `GetElementPtr` of index
//!   0, so call records carry a *temporary* register for the argument — the
//!   triplet case of paper Fig. 6(b);
//! * `&&`/`||`/`!` lower to integer ops over `i1` plus a final compare;
//! * `for`/`while` produce the canonical header/body/exit shape with the
//!   condition *on the statement's source line*, which is what lets the
//!   MCLR (main-computation-loop range) input resolve to the loop header.

use crate::ast::*;
use crate::sema::ExprTy;
use autocheck_ir::{
    BinOp, Builtin, CastOp, CmpPred, FuncId, Function, FunctionBuilder, Global, GlobalId,
    GlobalInit, Module, Param, SrcLoc, Type, Value,
};
use std::collections::HashMap;

/// Lower a checked program. Call only after [`crate::sema::check`] passed;
/// lowering trusts the invariants sema established.
pub fn lower(prog: &Program) -> Module {
    let mut module = Module::new();
    let mut globals: HashMap<String, (GlobalId, ExprTy)> = HashMap::new();
    for g in &prog.globals {
        let (ty, ety) = decl_ir_type(&g.ty);
        let init = match (&g.init, &g.ty) {
            (Some(e), DeclTy::Scalar(Scalar::Int)) => GlobalInit::I64(const_int(e)),
            (Some(e), DeclTy::Scalar(Scalar::Float)) => GlobalInit::F64(const_float(e)),
            _ => GlobalInit::Zero,
        };
        let id = module.add_global(Global {
            name: g.name.clone(),
            ty,
            init,
            loc: SrcLoc::new(g.pos.line, g.pos.col),
        });
        globals.insert(g.name.clone(), (id, ety));
    }
    // Pre-declare function ids so calls can reference later definitions.
    let mut func_ids: HashMap<String, FuncId> = HashMap::new();
    let mut sigs: HashMap<String, (Vec<ParamTy>, RetTy)> = HashMap::new();
    for (i, f) in prog.funcs.iter().enumerate() {
        func_ids.insert(f.name.clone(), FuncId(i as u32));
        sigs.insert(
            f.name.clone(),
            (f.params.iter().map(|p| p.ty.clone()).collect(), f.ret),
        );
    }
    for f in prog.funcs.iter() {
        let func = lower_func(f, &globals, &func_ids, &sigs);
        module.add_function(func);
    }
    module
}

fn const_int(e: &Expr) -> i64 {
    match &e.kind {
        ExprKind::IntLit(v) => *v,
        ExprKind::Neg(inner) => -const_int(inner),
        _ => 0,
    }
}

fn const_float(e: &Expr) -> f64 {
    match &e.kind {
        ExprKind::FloatLit(v) => *v,
        ExprKind::Neg(inner) => -const_float(inner),
        _ => 0.0,
    }
}

fn decl_ir_type(d: &DeclTy) -> (Type, ExprTy) {
    match d {
        DeclTy::Scalar(Scalar::Int) => (Type::I64, ExprTy::Int),
        DeclTy::Scalar(Scalar::Float) => (Type::F64, ExprTy::Float),
        DeclTy::Array(Scalar::Int, n) => (Type::Array(Box::new(Type::I64), *n), ExprTy::IntArr(*n)),
        DeclTy::Array(Scalar::Float, n) => {
            (Type::Array(Box::new(Type::F64), *n), ExprTy::FloatArr(*n))
        }
    }
}

fn param_ir_type(p: &ParamTy) -> (Type, ExprTy) {
    match p {
        ParamTy::Scalar(Scalar::Int) => (Type::I64, ExprTy::Int),
        ParamTy::Scalar(Scalar::Float) => (Type::F64, ExprTy::Float),
        ParamTy::Ptr(Scalar::Int) => (Type::I64.ptr_to(), ExprTy::IntPtr),
        ParamTy::Ptr(Scalar::Float) => (Type::F64.ptr_to(), ExprTy::FloatPtr),
    }
}

/// How a name resolves during lowering.
#[derive(Clone)]
enum Slot {
    Local(Value, ExprTy),
    Param(u32, ExprTy),
    Global(GlobalId, ExprTy),
}

struct Lowerer<'a> {
    b: FunctionBuilder,
    scopes: Vec<HashMap<String, Slot>>,
    globals: &'a HashMap<String, (GlobalId, ExprTy)>,
    func_ids: &'a HashMap<String, FuncId>,
    sigs: &'a HashMap<String, (Vec<ParamTy>, RetTy)>,
    /// Pre-created entry allocas, consumed in declaration pre-order.
    alloca_queue: std::vec::IntoIter<Value>,
    ret: RetTy,
}

fn lower_func(
    f: &FuncDecl,
    globals: &HashMap<String, (GlobalId, ExprTy)>,
    func_ids: &HashMap<String, FuncId>,
    sigs: &HashMap<String, (Vec<ParamTy>, RetTy)>,
) -> Function {
    let params: Vec<Param> = f
        .params
        .iter()
        .map(|p| Param {
            name: p.name.clone(),
            ty: param_ir_type(&p.ty).0,
        })
        .collect();
    let ret_ty = match f.ret {
        RetTy::Void => Type::Void,
        RetTy::Int => Type::I64,
        RetTy::Float => Type::F64,
    };
    let func = Function::new(&f.name, params, ret_ty, SrcLoc::new(f.pos.line, f.pos.col));
    let mut b = FunctionBuilder::new(func);

    // Entry allocas for every declaration in the body, in pre-order —
    // `clang -O0` hoists them the same way, and LLVM-Tracer reports them
    // with line -1 (synthetic).
    let mut decls = Vec::new();
    collect_decls(&f.body, &mut decls);
    let mut allocas = Vec::with_capacity(decls.len());
    for (name, dt) in &decls {
        let (ty, _) = decl_ir_type(dt);
        allocas.push(b.alloca(name, ty));
    }

    let mut lw = Lowerer {
        b,
        scopes: vec![HashMap::new()],
        globals,
        func_ids,
        sigs,
        alloca_queue: allocas.into_iter(),
        ret: f.ret,
    };
    for p in f.params.iter().enumerate() {
        let (i, pd) = p;
        let (_, ety) = param_ir_type(&pd.ty);
        lw.scopes
            .last_mut()
            .expect("scope")
            .insert(pd.name.clone(), Slot::Param(i as u32, ety));
    }
    lw.stmts(&f.body);
    if !lw.b.is_terminated() {
        match f.ret {
            RetTy::Void => lw.b.ret(None),
            RetTy::Int => lw.b.ret(Some(Value::ConstI(0))),
            RetTy::Float => lw.b.ret(Some(Value::ConstF(0.0))),
        };
    }
    lw.b.finish()
}

fn collect_decls(stmts: &[Stmt], out: &mut Vec<(String, DeclTy)>) {
    for s in stmts {
        match &s.kind {
            StmtKind::Decl { name, ty, .. } => out.push((name.clone(), ty.clone())),
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                collect_decls(then_body, out);
                collect_decls(else_body, out);
            }
            StmtKind::While { body, .. } => collect_decls(body, out),
            StmtKind::For {
                init, step, body, ..
            } => {
                if let Some(i) = init {
                    collect_decls(std::slice::from_ref(i), out);
                }
                if let Some(st) = step {
                    collect_decls(std::slice::from_ref(st), out);
                }
                collect_decls(body, out);
            }
            _ => {}
        }
    }
}

impl<'a> Lowerer<'a> {
    fn lookup(&self, name: &str) -> Slot {
        for scope in self.scopes.iter().rev() {
            if let Some(s) = scope.get(name) {
                return s.clone();
            }
        }
        let (gid, ety) = self
            .globals
            .get(name)
            .unwrap_or_else(|| panic!("sema guaranteed binding for `{name}`"));
        Slot::Global(*gid, *ety)
    }

    fn set_loc(&mut self, pos: Pos) {
        self.b.set_loc(pos.line, pos.col);
    }

    fn stmts(&mut self, body: &[Stmt]) {
        self.scopes.push(HashMap::new());
        for s in body {
            self.stmt(s);
        }
        self.scopes.pop();
    }

    fn stmt(&mut self, s: &Stmt) {
        if self.b.is_terminated() {
            // Unreachable code after `return` — create a fresh block so the
            // lowering stays well-formed (C allows dead statements).
            let dead = self.b.new_block();
            self.b.switch_to(dead);
        }
        match &s.kind {
            StmtKind::Decl { name, ty, init } => {
                let slot_val = self
                    .alloca_queue
                    .next()
                    .expect("alloca queue aligned with decl walk");
                let (_, ety) = decl_ir_type(ty);
                self.scopes
                    .last_mut()
                    .expect("scope")
                    .insert(name.clone(), Slot::Local(slot_val, ety));
                if let Some(e) = init {
                    self.set_loc(s.pos);
                    let (v, vt) = self.expr(e);
                    let v = self.coerce_for_store(v, vt, ety);
                    let ir_ty = scalar_ir(ety);
                    self.b.store(v, slot_val, ir_ty);
                }
            }
            StmtKind::Assign { lhs, rhs } => {
                self.set_loc(s.pos);
                let (v, vt) = self.expr(rhs);
                match lhs {
                    LValue::Var(name) => {
                        let (ptr, ety) = self.scalar_address(name);
                        let v = self.coerce_for_store(v, vt, ety);
                        self.b.store(v, ptr, scalar_ir(ety));
                    }
                    LValue::Index(name, idx) => {
                        let (iv, _) = self.expr(idx);
                        let (base, elem_ty) = self.element_base(name);
                        let ptr = self.b.gep(base, iv, scalar_ir(elem_ty));
                        let v = self.coerce_for_store(v, vt, elem_ty);
                        self.b.store(v, ptr, scalar_ir(elem_ty));
                    }
                }
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                self.set_loc(cond.pos);
                let c = self.cond_value(cond);
                let then_bb = self.b.new_block();
                let else_bb = self.b.new_block();
                let merge = self.b.new_block();
                self.b.cond_br(c, then_bb, else_bb);
                self.b.switch_to(then_bb);
                self.stmts(then_body);
                if !self.b.is_terminated() {
                    self.b.br(merge);
                }
                self.b.switch_to(else_bb);
                self.stmts(else_body);
                if !self.b.is_terminated() {
                    self.b.br(merge);
                }
                self.b.switch_to(merge);
            }
            StmtKind::While { cond, body } => {
                self.set_loc(cond.pos);
                let header = self.b.new_block();
                let body_bb = self.b.new_block();
                let exit = self.b.new_block();
                self.b.br(header);
                self.b.switch_to(header);
                self.set_loc(cond.pos);
                let c = self.cond_value(cond);
                self.b.cond_br(c, body_bb, exit);
                self.b.switch_to(body_bb);
                self.stmts(body);
                if !self.b.is_terminated() {
                    self.b.br(header);
                }
                self.b.switch_to(exit);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i);
                }
                self.set_loc(cond.as_ref().map(|c| c.pos).unwrap_or(s.pos));
                let header = self.b.new_block();
                let body_bb = self.b.new_block();
                let exit = self.b.new_block();
                self.b.br(header);
                self.b.switch_to(header);
                match cond {
                    Some(c) => {
                        self.set_loc(c.pos);
                        let cv = self.cond_value(c);
                        self.b.cond_br(cv, body_bb, exit);
                    }
                    None => {
                        self.b.br(body_bb);
                    }
                }
                self.b.switch_to(body_bb);
                self.stmts(body);
                if !self.b.is_terminated() {
                    if let Some(st) = step {
                        self.stmt(st);
                    }
                    self.b.br(header);
                }
                self.b.switch_to(exit);
                self.scopes.pop();
            }
            StmtKind::Return(value) => {
                self.set_loc(s.pos);
                match value {
                    None => {
                        self.b.ret(None);
                    }
                    Some(e) => {
                        let (v, vt) = self.expr(e);
                        let want = match self.ret {
                            RetTy::Int => ExprTy::Int,
                            RetTy::Float => ExprTy::Float,
                            RetTy::Void => ExprTy::Void,
                        };
                        let v = self.coerce_for_store(v, vt, want);
                        self.b.ret(Some(v));
                    }
                }
            }
            StmtKind::ExprStmt(e) => {
                self.set_loc(s.pos);
                self.expr(e);
            }
        }
    }

    /// Address and scalar type of a scalar variable.
    fn scalar_address(&mut self, name: &str) -> (Value, ExprTy) {
        match self.lookup(name) {
            Slot::Local(v, ety) => (v, ety),
            Slot::Global(g, ety) => (Value::Global(g), ety),
            Slot::Param(..) => unreachable!("sema rejects scalar-parameter assignment"),
        }
    }

    /// Base pointer and element type for an indexable variable.
    fn element_base(&mut self, name: &str) -> (Value, ExprTy) {
        match self.lookup(name) {
            Slot::Local(v, ety) => (v, elem_of(ety)),
            Slot::Global(g, ety) => (Value::Global(g), elem_of(ety)),
            Slot::Param(i, ety) => (Value::Param(i), elem_of(ety)),
        }
    }

    /// Lower an expression to `(value, type)`.
    fn expr(&mut self, e: &Expr) -> (Value, ExprTy) {
        match &e.kind {
            ExprKind::IntLit(v) => (Value::ConstI(*v), ExprTy::Int),
            ExprKind::FloatLit(v) => (Value::ConstF(*v), ExprTy::Float),
            ExprKind::Var(name) => match self.lookup(name) {
                Slot::Local(ptr, ety) => match ety {
                    ExprTy::Int | ExprTy::Float => (self.b.load(ptr, scalar_ir(ety)), ety),
                    // Array value position: decays to a pointer.
                    ExprTy::IntArr(_) => {
                        (self.b.gep(ptr, Value::ConstI(0), Type::I64), ExprTy::IntPtr)
                    }
                    ExprTy::FloatArr(_) => (
                        self.b.gep(ptr, Value::ConstI(0), Type::F64),
                        ExprTy::FloatPtr,
                    ),
                    _ => unreachable!(),
                },
                Slot::Param(i, ety) => (Value::Param(i), ety),
                Slot::Global(g, ety) => match ety {
                    ExprTy::Int | ExprTy::Float => {
                        (self.b.load(Value::Global(g), scalar_ir(ety)), ety)
                    }
                    ExprTy::IntArr(_) => (
                        self.b.gep(Value::Global(g), Value::ConstI(0), Type::I64),
                        ExprTy::IntPtr,
                    ),
                    ExprTy::FloatArr(_) => (
                        self.b.gep(Value::Global(g), Value::ConstI(0), Type::F64),
                        ExprTy::FloatPtr,
                    ),
                    _ => unreachable!(),
                },
            },
            ExprKind::Index(name, idx) => {
                let (iv, _) = self.expr(idx);
                let (base, elem_ty) = self.element_base(name);
                let ptr = self.b.gep(base, iv, scalar_ir(elem_ty));
                (self.b.load(ptr, scalar_ir(elem_ty)), elem_ty)
            }
            ExprKind::Neg(inner) => {
                let (v, t) = self.expr(inner);
                match t {
                    ExprTy::Float => (self.b.binary(BinOp::FSub, Value::ConstF(0.0), v), t),
                    _ => (self.b.binary(BinOp::Sub, Value::ConstI(0), v), ExprTy::Int),
                }
            }
            ExprKind::Not(inner) => {
                let (v, t) = self.expr(inner);
                let v1 = self.coerce_i1(v, t);
                (
                    self.b.cmp(CmpPred::Eq, v1, Value::ConstI(0), false),
                    ExprTy::Bool,
                )
            }
            ExprKind::Bin(op, l, r) => self.bin(*op, l, r),
            ExprKind::Call(name, args) => self.call(name, args),
        }
    }

    fn bin(&mut self, op: BinOpKind, l: &Expr, r: &Expr) -> (Value, ExprTy) {
        let (lv, lt) = self.expr(l);
        let (rv, rt) = self.expr(r);
        if op.is_logical() {
            let li = self.coerce_i1(lv, lt);
            let ri = self.coerce_i1(rv, rt);
            let combined = match op {
                BinOpKind::And => self.b.binary(BinOp::And, li, ri),
                _ => self.b.binary(BinOp::Or, li, ri),
            };
            return (
                self.b.cmp(CmpPred::Ne, combined, Value::ConstI(0), false),
                ExprTy::Bool,
            );
        }
        if op.is_comparison() {
            let float = lt == ExprTy::Float;
            let pred = match op {
                BinOpKind::Eq => CmpPred::Eq,
                BinOpKind::Ne => CmpPred::Ne,
                BinOpKind::Lt => CmpPred::Lt,
                BinOpKind::Le => CmpPred::Le,
                BinOpKind::Gt => CmpPred::Gt,
                BinOpKind::Ge => CmpPred::Ge,
                _ => unreachable!(),
            };
            return (self.b.cmp(pred, lv, rv, float), ExprTy::Bool);
        }
        let float = lt == ExprTy::Float;
        let (lv, rv) = if float {
            (lv, rv)
        } else {
            // Bool operands in int arithmetic zero-extend (C semantics).
            (self.bool_to_int(lv, lt), self.bool_to_int(rv, rt))
        };
        let ir_op = match (op, float) {
            (BinOpKind::Add, false) => BinOp::Add,
            (BinOpKind::Add, true) => BinOp::FAdd,
            (BinOpKind::Sub, false) => BinOp::Sub,
            (BinOpKind::Sub, true) => BinOp::FSub,
            (BinOpKind::Mul, false) => BinOp::Mul,
            (BinOpKind::Mul, true) => BinOp::FMul,
            (BinOpKind::Div, false) => BinOp::SDiv,
            (BinOpKind::Div, true) => BinOp::FDiv,
            (BinOpKind::Rem, false) => BinOp::SRem,
            (BinOpKind::Rem, true) => BinOp::SRem,
            _ => unreachable!(),
        };
        (
            self.b.binary(ir_op, lv, rv),
            if float { ExprTy::Float } else { ExprTy::Int },
        )
    }

    fn call(&mut self, name: &str, args: &[Expr]) -> (Value, ExprTy) {
        // Casts.
        if name == "int" {
            let (v, vt) = self.expr(&args[0]);
            return match vt {
                ExprTy::Bool => (self.b.cast(CastOp::ZExt, v), ExprTy::Int),
                _ => (self.b.cast(CastOp::FpToSi, v), ExprTy::Int),
            };
        }
        if name == "float" {
            let (v, _) = self.expr(&args[0]);
            return (self.b.cast(CastOp::SiToFp, v), ExprTy::Float);
        }
        // Builtins.
        if let Some(bi) = Builtin::by_name(name) {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                let (v, _) = self.expr(a);
                vals.push(v);
            }
            let ret = match bi.ret_type() {
                Type::Void => ExprTy::Void,
                Type::I64 => ExprTy::Int,
                _ => ExprTy::Float,
            };
            return (self.b.call_builtin(bi, vals), ret);
        }
        // User functions: decay array arguments.
        let fid = self.func_ids[name];
        let (param_tys, ret) = &self.sigs[name];
        let mut vals = Vec::with_capacity(args.len());
        for (a, _p) in args.iter().zip(param_tys) {
            let (v, _t) = self.expr(a);
            // Array decay already happened inside `expr` for Var of array
            // type; scalars and pointers pass through.
            vals.push(v);
        }
        let rv = self.b.call(fid, vals);
        let rty = match ret {
            RetTy::Void => ExprTy::Void,
            RetTy::Int => ExprTy::Int,
            RetTy::Float => ExprTy::Float,
        };
        (rv, rty)
    }

    /// Lower a condition expression to an `i1` value.
    fn cond_value(&mut self, e: &Expr) -> Value {
        let (v, t) = self.expr(e);
        self.coerce_i1(v, t)
    }

    fn coerce_i1(&mut self, v: Value, t: ExprTy) -> Value {
        match t {
            ExprTy::Bool => v,
            _ => self.b.cmp(CmpPred::Ne, v, Value::ConstI(0), false),
        }
    }

    fn bool_to_int(&mut self, v: Value, t: ExprTy) -> Value {
        if t == ExprTy::Bool {
            self.b.cast(CastOp::ZExt, v)
        } else {
            v
        }
    }

    /// Coerce a value for storage into a slot of type `want` (`bool → int`
    /// zero-extends; everything else is identity after sema).
    fn coerce_for_store(&mut self, v: Value, got: ExprTy, want: ExprTy) -> Value {
        if want == ExprTy::Int && got == ExprTy::Bool {
            self.b.cast(CastOp::ZExt, v)
        } else {
            v
        }
    }
}

fn scalar_ir(t: ExprTy) -> Type {
    match t {
        ExprTy::Float => Type::F64,
        _ => Type::I64,
    }
}

fn elem_of(t: ExprTy) -> ExprTy {
    match t {
        ExprTy::IntPtr | ExprTy::IntArr(_) => ExprTy::Int,
        ExprTy::FloatPtr | ExprTy::FloatArr(_) => ExprTy::Float,
        _ => unreachable!("sema guarantees indexable"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::sema::check;
    use autocheck_ir::{Cfg, DomTree, InstKind, LoopForest, RegName};

    fn lower_src(src: &str) -> Module {
        let prog = parse(&lex(src).unwrap()).unwrap();
        check(&prog).unwrap();
        let m = lower(&prog);
        autocheck_ir::verify_module(&m).unwrap_or_else(|e| panic!("verify: {e:?}"));
        m
    }

    #[test]
    fn allocas_are_hoisted_and_synthetic() {
        let m = lower_src(
            "int main() {\n int x = 1;\n for (int i = 0; i < 3; i = i + 1) { int y = 2; x = x + y; }\n return x;\n}",
        );
        let f = m.function(m.function_by_name("main").unwrap());
        // All allocas in entry block, all with synthetic location.
        let entry = &f.blocks[0];
        let allocas: Vec<_> = entry
            .insts
            .iter()
            .map(|id| f.inst(*id))
            .filter(|i| matches!(i.kind, InstKind::Alloca { .. }))
            .collect();
        assert_eq!(allocas.len(), 3, "x, i, y");
        for a in &allocas {
            assert_eq!(a.loc.line, 0, "alloca has synthetic loc");
        }
        // No allocas anywhere else.
        for b in &f.blocks[1..] {
            for id in &b.insts {
                assert!(!matches!(f.inst(*id).kind, InstKind::Alloca { .. }));
            }
        }
    }

    #[test]
    fn loop_header_carries_for_line() {
        let src = "int main() {\n int s = 0;\n for (int i = 0; i < 4; i = i + 1) {\n  s = s + i;\n }\n print(s);\n return 0;\n}";
        let m = lower_src(src);
        let f = m.function(m.function_by_name("main").unwrap());
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(&cfg);
        let forest = LoopForest::compute(f, &cfg, &dom);
        assert_eq!(forest.loops.len(), 1);
        let header = forest.loops[0].header;
        assert_eq!(f.blocks[header.index()].loc.line, 3, "for is on line 3");
        // Induction variable is found by the loop pass.
        let cv = autocheck_ir::loops::control_variables(&m, f, &forest.loops[0]);
        assert_eq!(cv.len(), 1);
        assert_eq!(cv[0].name, "i");
        assert!(cv[0].is_basic_induction);
    }

    #[test]
    fn array_decay_uses_gep() {
        let src = "void foo(int* p) { p[0] = 1; }\nint main() { int a[4]; foo(a); return 0; }";
        let m = lower_src(src);
        let f = m.function(m.function_by_name("main").unwrap());
        // Find the call and check its argument comes from a GEP of `a`.
        let call = f
            .iter_insts()
            .find_map(|(_, i)| match &i.kind {
                InstKind::Call { args, .. } if !args.is_empty() => Some(args[0]),
                _ => None,
            })
            .expect("call with args");
        let gep_id = call.as_inst().expect("argument is an instruction result");
        match &f.inst(gep_id).kind {
            InstKind::Gep { base, .. } => {
                let alloca_id = base.as_inst().expect("gep base is the alloca");
                match &f.inst(alloca_id).kind {
                    InstKind::Alloca { var, .. } => assert_eq!(var, "a"),
                    other => panic!("expected alloca, got {other:?}"),
                }
            }
            other => panic!("expected gep, got {other:?}"),
        }
    }

    #[test]
    fn shadowed_variables_get_distinct_allocas() {
        let src = "int main() { int x = 1; for (int i = 0; i < 2; i = i + 1) { int x = 10; x = x + 1; } return x; }";
        let m = lower_src(src);
        let f = m.function(m.function_by_name("main").unwrap());
        let count = f
            .iter_insts()
            .filter(|(_, i)| matches!(&i.kind, InstKind::Alloca { var, .. } if var == "x"))
            .count();
        assert_eq!(count, 2);
    }

    #[test]
    fn logical_ops_lower_to_and_plus_compare() {
        let src = "int main() { int a = 1; int b = 0; if (a > 0 && b == 0) { b = 2; } return b; }";
        let m = lower_src(src);
        let f = m.function(m.function_by_name("main").unwrap());
        assert!(f
            .iter_insts()
            .any(|(_, i)| matches!(i.kind, InstKind::Binary { op: BinOp::And, .. })));
    }

    #[test]
    fn names_match_source_variables() {
        let src = "int main() { int sum = 0; sum = sum + 1; return sum; }";
        let m = lower_src(src);
        let f = m.function(m.function_by_name("main").unwrap());
        let alloca = f
            .iter_insts()
            .find(|(_, i)| matches!(i.kind, InstKind::Alloca { .. }))
            .unwrap()
            .1;
        assert_eq!(alloca.name, RegName::Var("sum".into()));
    }

    #[test]
    fn dead_code_after_return_stays_well_formed() {
        let src = "int main() { return 1; print(2); return 0; }";
        lower_src(src); // verifier inside lower_src accepts it
    }

    #[test]
    fn global_initializers_lower() {
        let src = "global float shift = -0.5;\nglobal int base = 3;\nglobal int arr[4];\nint main() { return base; }";
        let m = lower_src(src);
        assert_eq!(m.globals.len(), 3);
        assert_eq!(m.globals[0].init, GlobalInit::F64(-0.5));
        assert_eq!(m.globals[1].init, GlobalInit::I64(3));
        assert_eq!(m.globals[2].init, GlobalInit::Zero);
    }

    #[test]
    fn while_loop_lowers_with_header() {
        let src = "int main() {\n int done = 0;\n int ts = 0;\n while (done == 0 && ts < 9) {\n  ts = ts + 1;\n  done = ts >= 5;\n }\n return ts;\n}";
        let m = lower_src(src);
        let f = m.function(m.function_by_name("main").unwrap());
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(&cfg);
        let forest = LoopForest::compute(f, &cfg, &dom);
        assert_eq!(forest.loops.len(), 1);
        let mut cv = autocheck_ir::loops::control_variables(&m, f, &forest.loops[0]);
        cv.sort_by(|a, b| a.name.cmp(&b.name));
        let names: Vec<_> = cv.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["done", "ts"]);
    }
}
