//! Token definitions.

use std::fmt;

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    // Literals and identifiers.
    /// Integer literal.
    Int(i64),
    /// Float literal (must contain `.` or an exponent).
    Float(f64),
    /// Identifier.
    Ident(String),

    // Keywords.
    /// `int`.
    KwInt,
    /// `float`.
    KwFloat,
    /// `void`.
    KwVoid,
    /// `global`.
    KwGlobal,
    /// `if`.
    KwIf,
    /// `else`.
    KwElse,
    /// `while`.
    KwWhile,
    /// `for`.
    KwFor,
    /// `return`.
    KwReturn,

    // Punctuation.
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `;`.
    Semi,
    /// `,`.
    Comma,
    /// `=`.
    Assign,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `==`.
    EqEq,
    /// `!=`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// `!`.
    Not,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::KwInt => write!(f, "int"),
            Tok::KwFloat => write!(f, "float"),
            Tok::KwVoid => write!(f, "void"),
            Tok::KwGlobal => write!(f, "global"),
            Tok::KwIf => write!(f, "if"),
            Tok::KwElse => write!(f, "else"),
            Tok::KwWhile => write!(f, "while"),
            Tok::KwFor => write!(f, "for"),
            Tok::KwReturn => write!(f, "return"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Semi => write!(f, ";"),
            Tok::Comma => write!(f, ","),
            Tok::Assign => write!(f, "="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::EqEq => write!(f, "=="),
            Tok::NotEq => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::AndAnd => write!(f, "&&"),
            Tok::OrOr => write!(f, "||"),
            Tok::Not => write!(f, "!"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}
