//! MiniLang: a small C-like frontend for the autocheck mini-IR.
//!
//! The paper's 14 benchmarks are C/C++ programs compiled by Clang 3.4. We
//! cannot ship those sources or that toolchain, so the benchmarks are
//! rewritten in MiniLang — a deliberately C-shaped language that preserves
//! what AutoCheck actually analyzes: *which named variables are read and
//! written where*, across nested loops and function calls. The lowering
//! mimics `clang -O0`: every variable becomes an `alloca` (hoisted to the
//! function entry, with no source line — exactly the `-1` line numbers
//! LLVM-Tracer prints for allocas), every access goes through
//! `Load`/`Store`, arrays decay to pointers at call sites via a
//! `GetElementPtr`, and logical operators lower to `zext`/`and`/`or` plus a
//! final compare, as Clang does.
//!
//! # Language summary
//!
//! ```c
//! global int sums[10];          // module globals (zero-initialized)
//! global float shift = 0.5;    // or scalar-initialized
//!
//! void foo(int* p, int* q, int n) {
//!     for (int i = 0; i < n; i = i + 1) {
//!         q[i] = p[i] * 2;
//!     }
//! }
//!
//! int main() {
//!     int a[10]; int b[10];
//!     int sum = 0;
//!     for (int it = 0; it < 10; it = it + 1) {
//!         foo(a, b, 10);
//!         sum = a[it] + b[it];
//!     }
//!     print(sum);
//!     return 0;
//! }
//! ```
//!
//! Types are `int` (i64), `float` (f64), and fixed-size 1-D arrays of
//! either (multi-dimensional data is linearised by hand, as the benchmarks
//! do). There is no implicit `int`/`float` conversion; use `float(x)` and
//! `int(x)`. Booleans exist only as expression results (`bool` assigned to
//! `int` zero-extends). `&&`/`||` do not short-circuit (they lower to
//! bitwise combination; no MiniLang program relies on guarding semantics).
//! Scalar parameters are read-only; array parameters are pointers.
//! Builtins: `print`, `sqrt`, `pow`, `fabs`, `abs`, `exp`, `log`, `cos`,
//! `sin`, `floor`, `fmax`, `fmin`.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod sema;
pub mod token;

pub use error::CompileError;

/// Compile MiniLang source into a verified IR module.
///
/// This is the crate's one-call entry point: lex → parse → semantic
/// analysis → lowering → IR verification.
pub fn compile(source: &str) -> Result<autocheck_ir::Module, Vec<CompileError>> {
    let tokens = lexer::lex(source).map_err(|e| vec![e])?;
    let program = parser::parse(&tokens).map_err(|e| vec![e])?;
    sema::check(&program)?;
    let module = lower::lower(&program);
    if let Err(errs) = autocheck_ir::verify_module(&module) {
        // A verifier failure after successful sema is a compiler bug; report
        // it as an internal error rather than panicking so fuzzing can see it.
        return Err(errs
            .into_iter()
            .map(|e| CompileError::internal(format!("verifier: {e}")))
            .collect());
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_hello_sum() {
        let src = r#"
int main() {
    int sum = 0;
    for (int i = 0; i < 5; i = i + 1) {
        sum = sum + i;
    }
    print(sum);
    return 0;
}
"#;
        let m = compile(src).expect("compiles");
        assert_eq!(m.functions.len(), 1);
        assert!(m.function_by_name("main").is_some());
    }

    #[test]
    fn reports_type_errors_with_location() {
        let src = "int main() { float x = 1; return 0; }\n";
        let errs = compile(src).unwrap_err();
        assert!(errs[0].to_string().contains("line 1"));
    }
}
