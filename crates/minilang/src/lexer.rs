//! Hand-written lexer.

use crate::error::CompileError;
use crate::token::{Tok, Token};

/// Tokenize `source`. `//` comments run to end of line.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let mut out = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! push {
        ($tok:expr, $l:expr, $c:expr) => {
            out.push(Token {
                tok: $tok,
                line: $l,
                col: $c,
            })
        };
    }

    while i < bytes.len() {
        let b = bytes[i];
        let (tl, tc) = (line, col);
        match b {
            b'\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => {
                col += 1;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'.' {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    is_float = true;
                    i += 1;
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        i += 1;
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &source[start..i];
                col += (i - start) as u32;
                if is_float {
                    let v: f64 = text.parse().map_err(|_| {
                        CompileError::at(tl, tc, format!("bad float literal `{text}`"))
                    })?;
                    push!(Tok::Float(v), tl, tc);
                } else {
                    let v: i64 = text.parse().map_err(|_| {
                        CompileError::at(tl, tc, format!("bad int literal `{text}`"))
                    })?;
                    push!(Tok::Int(v), tl, tc);
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let text = &source[start..i];
                col += (i - start) as u32;
                let tok = match text {
                    "int" => Tok::KwInt,
                    "float" => Tok::KwFloat,
                    "void" => Tok::KwVoid,
                    "global" => Tok::KwGlobal,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "while" => Tok::KwWhile,
                    "for" => Tok::KwFor,
                    "return" => Tok::KwReturn,
                    _ => Tok::Ident(text.to_string()),
                };
                push!(tok, tl, tc);
            }
            _ => {
                let two = |a: u8| bytes.get(i + 1) == Some(&a);
                let (tok, len) = match b {
                    b'(' => (Tok::LParen, 1),
                    b')' => (Tok::RParen, 1),
                    b'{' => (Tok::LBrace, 1),
                    b'}' => (Tok::RBrace, 1),
                    b'[' => (Tok::LBracket, 1),
                    b']' => (Tok::RBracket, 1),
                    b';' => (Tok::Semi, 1),
                    b',' => (Tok::Comma, 1),
                    b'+' => (Tok::Plus, 1),
                    b'-' => (Tok::Minus, 1),
                    b'*' => (Tok::Star, 1),
                    b'/' => (Tok::Slash, 1),
                    b'%' => (Tok::Percent, 1),
                    b'=' if two(b'=') => (Tok::EqEq, 2),
                    b'=' => (Tok::Assign, 1),
                    b'!' if two(b'=') => (Tok::NotEq, 2),
                    b'!' => (Tok::Not, 1),
                    b'<' if two(b'=') => (Tok::Le, 2),
                    b'<' => (Tok::Lt, 1),
                    b'>' if two(b'=') => (Tok::Ge, 2),
                    b'>' => (Tok::Gt, 1),
                    b'&' if two(b'&') => (Tok::AndAnd, 2),
                    b'|' if two(b'|') => (Tok::OrOr, 2),
                    other => {
                        return Err(CompileError::at(
                            tl,
                            tc,
                            format!("unexpected character `{}`", other as char),
                        ))
                    }
                };
                push!(tok, tl, tc);
                i += len;
                col += len as u32;
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![
                Tok::KwInt,
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(42),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_floats_and_exponents() {
        assert_eq!(kinds("1.5")[0], Tok::Float(1.5));
        assert_eq!(kinds("2e3")[0], Tok::Float(2000.0));
        assert_eq!(kinds("1.25e-2")[0], Tok::Float(0.0125));
        assert_eq!(kinds("7")[0], Tok::Int(7));
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            kinds("== != <= >= && ||"),
            vec![
                Tok::EqEq,
                Tok::NotEq,
                Tok::Le,
                Tok::Ge,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped_but_lines_counted() {
        let toks = lex("// hello\nint x;\n").unwrap();
        assert_eq!(toks[0].tok, Tok::KwInt);
        assert_eq!(toks[0].line, 2);
        assert_eq!(toks[0].col, 1);
    }

    #[test]
    fn positions_are_tracked() {
        let toks = lex("int main() {\n  return 0;\n}\n").unwrap();
        let ret = toks.iter().find(|t| t.tok == Tok::KwReturn).unwrap();
        assert_eq!((ret.line, ret.col), (2, 3));
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = lex("int @x;").unwrap_err();
        assert!(err.message.contains('@'));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(kinds("form")[0], Tok::Ident("form".into()));
        assert_eq!(kinds("for")[0], Tok::KwFor);
        assert_eq!(kinds("int_x")[0], Tok::Ident("int_x".into()));
    }
}
