//! A cursor-style construction API.
//!
//! The builder keeps a current block and a current source location; the
//! MiniLang lowering sets the location once per statement and then emits the
//! instruction sequence for it. Every emission helper returns the [`Value`]
//! of the produced result so expression trees compose naturally.

use crate::inst::{BinOp, Builtin, Callee, CastOp, CmpPred, InstKind, SrcLoc};
use crate::module::{BlockId, Function, InstId};
use crate::types::Type;
use crate::value::Value;

/// Builds one function.
pub struct FunctionBuilder {
    func: Function,
    cur: BlockId,
    loc: SrcLoc,
    /// True once the current block has a terminator; further instructions
    /// would be unreachable and are a builder-usage bug.
    terminated: bool,
}

impl FunctionBuilder {
    /// Start building `func`, positioned at its entry block.
    pub fn new(func: Function) -> Self {
        let cur = func.entry();
        FunctionBuilder {
            func,
            cur,
            loc: SrcLoc::synthetic(),
            terminated: false,
        }
    }

    /// Finish and return the completed function.
    pub fn finish(self) -> Function {
        self.func
    }

    /// Read-only access to the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }

    /// Set the source location attached to subsequently emitted instructions.
    pub fn set_loc(&mut self, line: u32, col: u32) {
        self.loc = SrcLoc::new(line, col);
    }

    /// The current source location.
    pub fn loc(&self) -> SrcLoc {
        self.loc
    }

    /// Create a new block (does not move the cursor).
    pub fn new_block(&mut self) -> BlockId {
        self.func.add_block(self.loc)
    }

    /// Move the cursor to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.cur = block;
        self.terminated = self.func.terminator(block).is_some();
    }

    /// The block the cursor is on.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Whether the current block already ends in a terminator.
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }

    fn emit(&mut self, kind: InstKind) -> InstId {
        assert!(
            !self.terminated,
            "emitting into terminated block {} of `{}`",
            self.cur.0, self.func.name
        );
        let loc = self.loc;
        self.func.push_inst(self.cur, kind, loc)
    }

    fn emit_term(&mut self, kind: InstKind) -> InstId {
        let id = self.emit(kind);
        self.terminated = true;
        id
    }

    /// `alloca` for a named source variable; returns the address value.
    pub fn alloca(&mut self, var: &str, ty: Type) -> Value {
        Value::Inst(self.emit(InstKind::Alloca {
            ty,
            var: var.to_string(),
        }))
    }

    /// Load a `ty` scalar through `ptr`.
    pub fn load(&mut self, ptr: Value, ty: Type) -> Value {
        Value::Inst(self.emit(InstKind::Load { ptr, ty }))
    }

    /// Store `value` (of type `ty`) through `ptr`.
    pub fn store(&mut self, value: Value, ptr: Value, ty: Type) -> InstId {
        self.emit(InstKind::Store { value, ptr, ty })
    }

    /// Address of `base[index]` where elements have type `elem`.
    pub fn gep(&mut self, base: Value, index: Value, elem: Type) -> Value {
        Value::Inst(self.emit(InstKind::Gep { base, index, elem }))
    }

    /// Pointer reinterpretation.
    pub fn bitcast(&mut self, value: Value, to: Type) -> Value {
        Value::Inst(self.emit(InstKind::BitCast { value, to }))
    }

    /// Binary arithmetic.
    pub fn binary(&mut self, op: BinOp, lhs: Value, rhs: Value) -> Value {
        Value::Inst(self.emit(InstKind::Binary { op, lhs, rhs }))
    }

    /// Comparison producing `i1`.
    pub fn cmp(&mut self, pred: CmpPred, lhs: Value, rhs: Value, float: bool) -> Value {
        Value::Inst(self.emit(InstKind::Cmp {
            pred,
            lhs,
            rhs,
            float,
        }))
    }

    /// Value conversion.
    pub fn cast(&mut self, op: CastOp, value: Value) -> Value {
        Value::Inst(self.emit(InstKind::Cast { op, value }))
    }

    /// Call a defined function.
    pub fn call(&mut self, callee: crate::module::FuncId, args: Vec<Value>) -> Value {
        Value::Inst(self.emit(InstKind::Call {
            callee: Callee::Function(callee),
            args,
        }))
    }

    /// Call a builtin.
    pub fn call_builtin(&mut self, b: Builtin, args: Vec<Value>) -> Value {
        Value::Inst(self.emit(InstKind::Call {
            callee: Callee::Builtin(b),
            args,
        }))
    }

    /// Return.
    pub fn ret(&mut self, value: Option<Value>) -> InstId {
        self.emit_term(InstKind::Ret { value })
    }

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) -> InstId {
        self.emit_term(InstKind::Br { target })
    }

    /// Conditional branch.
    pub fn cond_br(&mut self, cond: Value, then_bb: BlockId, else_bb: BlockId) -> InstId {
        self.emit_term(InstKind::CondBr {
            cond,
            then_bb,
            else_bb,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Param;

    fn fresh(name: &str) -> FunctionBuilder {
        FunctionBuilder::new(Function::new(
            name,
            vec![Param {
                name: "n".into(),
                ty: Type::I64,
            }],
            Type::I64,
            SrcLoc::new(1, 1),
        ))
    }

    #[test]
    fn builds_straightline_code() {
        let mut b = fresh("f");
        b.set_loc(2, 1);
        let x = b.alloca("x", Type::I64);
        b.store(Value::Param(0), x, Type::I64);
        let v = b.load(x, Type::I64);
        let doubled = b.binary(BinOp::Mul, v, Value::ConstI(2));
        b.ret(Some(doubled));
        let f = b.finish();
        assert_eq!(f.blocks[0].insts.len(), 5);
        assert!(f.terminator(f.entry()).is_some());
    }

    #[test]
    fn builds_a_loop_cfg() {
        // for (i = 0; i < n; i = i + 1) {}
        let mut b = fresh("loop");
        b.set_loc(2, 1);
        let i = b.alloca("i", Type::I64);
        b.store(Value::ConstI(0), i, Type::I64);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let iv = b.load(i, Type::I64);
        let c = b.cmp(CmpPred::Lt, iv, Value::Param(0), false);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let iv2 = b.load(i, Type::I64);
        let inc = b.binary(BinOp::Add, iv2, Value::ConstI(1));
        b.store(inc, i, Type::I64);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(Value::ConstI(0)));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 4);
        assert!(f.blocks.iter().all(|blk| {
            blk.insts
                .last()
                .map(|id| f.inst(*id).is_terminator())
                .unwrap_or(false)
        }));
    }

    #[test]
    #[should_panic(expected = "terminated block")]
    fn emitting_after_terminator_panics() {
        let mut b = fresh("bad");
        b.ret(None);
        b.alloca("x", Type::I64);
    }

    #[test]
    fn switch_to_tracks_termination() {
        let mut b = fresh("s");
        let other = b.new_block();
        b.ret(None);
        assert!(b.is_terminated());
        b.switch_to(other);
        assert!(!b.is_terminated());
        b.ret(None);
        assert!(b.is_terminated());
    }
}
