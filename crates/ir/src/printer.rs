//! Human-readable textual dump of IR modules, for debugging and docs.

use crate::inst::{Callee, InstKind};
use crate::module::{Function, Module};
use crate::value::Value;
use std::fmt::Write as _;

/// Render a whole module.
pub fn print_module(m: &Module) -> String {
    let mut s = String::new();
    for g in &m.globals {
        let _ = writeln!(s, "global @{} : {} ; line {}", g.name, g.ty, g.loc.line);
    }
    if !m.globals.is_empty() {
        s.push('\n');
    }
    for f in &m.functions {
        s.push_str(&print_function(m, f));
        s.push('\n');
    }
    s
}

/// Render one function.
pub fn print_function(m: &Module, f: &Function) -> String {
    let mut s = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .map(|p| format!("{}: {}", p.name, p.ty))
        .collect();
    let _ = writeln!(s, "fn {}({}) -> {} {{", f.name, params.join(", "), f.ret);
    for (bi, block) in f.blocks.iter().enumerate() {
        let _ = writeln!(s, "bb{} (label {}, loc {}):", bi, block.label, block.loc);
        for &id in &block.insts {
            let inst = f.inst(id);
            let name = match &inst.name {
                crate::inst::RegName::None => String::new(),
                n => format!("{n} = "),
            };
            let body = match &inst.kind {
                InstKind::Alloca { ty, var } => format!("alloca {ty} ; var `{var}`"),
                InstKind::Load { ptr, ty } => format!("load {ty}, {}", val(ptr)),
                InstKind::Store { value, ptr, ty } => {
                    format!("store {ty} {}, {}", val(value), val(ptr))
                }
                InstKind::Gep { base, index, elem } => {
                    format!("gep {elem}, {}[{}]", val(base), val(index))
                }
                InstKind::BitCast { value, to } => format!("bitcast {} to {to}", val(value)),
                InstKind::Binary { op, lhs, rhs } => {
                    format!("{} {}, {}", op.mnemonic(), val(lhs), val(rhs))
                }
                InstKind::Cmp {
                    pred,
                    lhs,
                    rhs,
                    float,
                } => format!(
                    "{} {} {}, {}",
                    if *float { "fcmp" } else { "icmp" },
                    pred.mnemonic(),
                    val(lhs),
                    val(rhs)
                ),
                InstKind::Cast { op, value } => format!("{op:?} {}", val(value)),
                InstKind::Call { callee, args } => {
                    let cname = match callee {
                        Callee::Function(fid) => m.function(*fid).name.clone(),
                        Callee::Builtin(b) => b.name().to_string(),
                    };
                    let args: Vec<String> = args.iter().map(val).collect();
                    format!("call {}({})", cname, args.join(", "))
                }
                InstKind::Ret { value } => match value {
                    Some(v) => format!("ret {}", val(v)),
                    None => "ret void".to_string(),
                },
                InstKind::Br { target } => format!("br bb{}", target.0),
                InstKind::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => format!("br {}, bb{}, bb{}", val(cond), then_bb.0, else_bb.0),
            };
            let _ = writeln!(s, "  {name}{body} ; line {}", inst.loc.line);
        }
    }
    s.push_str("}\n");
    s
}

fn val(v: &Value) -> String {
    v.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, SrcLoc};
    use crate::types::Type;

    #[test]
    fn prints_something_sensible() {
        let mut m = Module::new();
        let mut b =
            FunctionBuilder::new(Function::new("main", vec![], Type::I64, SrcLoc::new(1, 1)));
        b.set_loc(2, 3);
        let x = b.alloca("x", Type::I64);
        b.store(Value::ConstI(41), x, Type::I64);
        let v = b.load(x, Type::I64);
        let w = b.binary(BinOp::Add, v, Value::ConstI(1));
        b.ret(Some(w));
        m.add_function(b.finish());
        let text = print_module(&m);
        assert!(text.contains("fn main() -> i64"));
        assert!(text.contains("alloca i64 ; var `x`"));
        assert!(text.contains("add"));
        assert!(text.contains("; line 2"));
    }
}
