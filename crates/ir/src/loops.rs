//! Natural-loop detection and loop control-variable analysis.
//!
//! This module stands in for the paper's "llvm-pass-loop API" (§IV-C):
//! AutoCheck checkpoints the induction variable of the outermost main
//! computation loop ("Index" variables), which it identifies with an LLVM
//! loop pass rather than from the trace. We do the same over our IR: back
//! edges via the dominator tree, natural-loop bodies by backward reachability,
//! nesting by body inclusion, and control/induction variables by pattern
//! matching the header's exit condition against in-loop stores.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::inst::{BinOp, InstKind};
use crate::module::{BlockId, Function, InstId, Module};
use crate::value::Value;
use std::collections::BTreeSet;

/// One natural loop.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The unique header block (target of the back edges).
    pub header: BlockId,
    /// Source blocks of the back edges.
    pub latches: Vec<BlockId>,
    /// All blocks in the loop, header included.
    pub body: BTreeSet<BlockId>,
    /// Index of the innermost enclosing loop in the forest, if any.
    pub parent: Option<usize>,
    /// Nesting depth; outermost loops have depth 1.
    pub depth: u32,
}

impl Loop {
    /// True when `b` belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }
}

/// All natural loops of a function, with nesting.
#[derive(Clone, Debug, Default)]
pub struct LoopForest {
    /// The loops; order is unspecified, use [`LoopForest::outermost`] or the
    /// parent links.
    pub loops: Vec<Loop>,
}

impl LoopForest {
    /// Detect the natural loops of `f`.
    pub fn compute(_f: &Function, cfg: &Cfg, dom: &DomTree) -> LoopForest {
        // 1. Find back edges (n -> h where h dominates n), grouped by header.
        let mut by_header: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for &n in cfg.reverse_postorder() {
            for &s in cfg.succs(n) {
                if dom.dominates(s, n) {
                    match by_header.iter_mut().find(|(h, _)| *h == s) {
                        Some((_, latches)) => latches.push(n),
                        None => by_header.push((s, vec![n])),
                    }
                }
            }
        }
        // 2. Natural loop body: header plus everything that reaches a latch
        //    backwards without passing through the header.
        let mut loops: Vec<Loop> = Vec::new();
        for (header, latches) in by_header {
            let mut body = BTreeSet::new();
            body.insert(header);
            let mut stack: Vec<BlockId> = Vec::new();
            for &l in &latches {
                if body.insert(l) {
                    stack.push(l);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in cfg.preds(b) {
                    if body.insert(p) {
                        stack.push(p);
                    }
                }
            }
            loops.push(Loop {
                header,
                latches,
                body,
                parent: None,
                depth: 1,
            });
        }
        // 3. Nesting: the parent is the smallest strict superset.
        let snapshot: Vec<BTreeSet<BlockId>> = loops.iter().map(|l| l.body.clone()).collect();
        for i in 0..loops.len() {
            let mut best: Option<usize> = None;
            for (j, body_j) in snapshot.iter().enumerate() {
                if i == j {
                    continue;
                }
                if body_j.len() > snapshot[i].len() && snapshot[i].is_subset(body_j) {
                    best = match best {
                        None => Some(j),
                        Some(cur) if body_j.len() < snapshot[cur].len() => Some(j),
                        keep => keep,
                    };
                }
            }
            loops[i].parent = best;
        }
        // 4. Depths.
        for i in 0..loops.len() {
            let mut d = 1;
            let mut p = loops[i].parent;
            while let Some(j) = p {
                d += 1;
                p = loops[j].parent;
            }
            loops[i].depth = d;
        }
        LoopForest { loops }
    }

    /// Indices of the outermost loops (depth 1).
    pub fn outermost(&self) -> impl Iterator<Item = usize> + '_ {
        self.loops
            .iter()
            .enumerate()
            .filter(|(_, l)| l.depth == 1)
            .map(|(i, _)| i)
    }

    /// The outermost loop whose header is located within the source-line
    /// range `[start, end]` — this is how the main computation loop named by
    /// the user's MCLR input is resolved to an IR loop.
    pub fn outermost_in_region(&self, f: &Function, start: u32, end: u32) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, l) in self.loops.iter().enumerate() {
            let line = f.blocks[l.header.index()].loc.line;
            if line < start || line > end {
                continue;
            }
            best = match best {
                None => Some(i),
                Some(cur) => {
                    let (dc, db) = (self.loops[cur].depth, l.depth);
                    let (lc, lb) = (f.blocks[self.loops[cur].header.index()].loc.line, line);
                    // Prefer shallower loops, then earlier headers.
                    if db < dc || (db == dc && lb < lc) {
                        Some(i)
                    } else {
                        Some(cur)
                    }
                }
            };
        }
        best
    }
}

/// A loop control variable: a named memory location read by the header's
/// exit condition and stored to inside the loop.
///
/// AutoCheck's "Index" category covers exactly these (the paper's miniAMR row
/// lists both `ts`, a classic induction variable, and `done`, a flag steering
/// the outer `while`).
#[derive(Clone, Debug, PartialEq)]
pub struct ControlVar {
    /// Variable name (an `Alloca`'d local or a module global).
    pub name: String,
    /// True when the in-loop update matches the basic induction pattern
    /// `v = v ± c`.
    pub is_basic_induction: bool,
    /// The constant step for basic induction variables.
    pub step: Option<i64>,
}

/// Find the control variables of loop `l` in function `f`.
pub fn control_variables(m: &Module, f: &Function, l: &Loop) -> Vec<ControlVar> {
    // Collect the loads feeding the header's conditional branch.
    let header = &f.blocks[l.header.index()];
    let Some(&term_id) = header.insts.last() else {
        return Vec::new();
    };
    let cond = match &f.inst(term_id).kind {
        InstKind::CondBr { cond, .. } => *cond,
        _ => return Vec::new(),
    };
    let mut loads: Vec<InstId> = Vec::new();
    collect_feeding_loads(f, cond, &mut loads);

    let mut out: Vec<ControlVar> = Vec::new();
    for load in loads {
        let InstKind::Load { ptr, .. } = &f.inst(load).kind else {
            continue;
        };
        let Some(name) = named_location(m, f, *ptr) else {
            continue;
        };
        if out.iter().any(|c| c.name == name) {
            continue;
        }
        // Must be stored somewhere inside the loop to qualify (otherwise it
        // is a loop-invariant bound such as `n` in `i < n`).
        let mut stored = false;
        let mut induction_step: Option<i64> = None;
        for &bb in &l.body {
            for &iid in &f.blocks[bb.index()].insts {
                let InstKind::Store { value, ptr, .. } = &f.inst(iid).kind else {
                    continue;
                };
                if named_location(m, f, *ptr).as_deref() != Some(name.as_str()) {
                    continue;
                }
                stored = true;
                induction_step =
                    induction_step.or_else(|| basic_induction_step(f, *value, &name, m));
            }
        }
        if stored {
            out.push(ControlVar {
                name,
                is_basic_induction: induction_step.is_some(),
                step: induction_step,
            });
        }
    }
    out
}

/// Walk an operand tree, collecting the `Load` instructions that feed it.
fn collect_feeding_loads(f: &Function, v: Value, out: &mut Vec<InstId>) {
    let Some(id) = v.as_inst() else { return };
    match &f.inst(id).kind {
        InstKind::Load { .. } => out.push(id),
        InstKind::Binary { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
            collect_feeding_loads(f, *lhs, out);
            collect_feeding_loads(f, *rhs, out);
        }
        InstKind::Cast { value, .. } => collect_feeding_loads(f, *value, out),
        _ => {}
    }
}

/// Resolve a pointer operand to the name of a scalar variable, if it refers
/// directly to an `Alloca` or a `Global` (not through a GEP — array elements
/// are never loop control variables here).
fn named_location(m: &Module, f: &Function, ptr: Value) -> Option<String> {
    match ptr {
        Value::Inst(id) => match &f.inst(id).kind {
            InstKind::Alloca { var, .. } => Some(var.clone()),
            InstKind::BitCast { value, .. } => named_location(m, f, *value),
            _ => None,
        },
        Value::Global(g) => Some(m.global(g).name.clone()),
        _ => None,
    }
}

/// If `value` matches `load(name) ± const`, return the signed step.
fn basic_induction_step(f: &Function, value: Value, name: &str, m: &Module) -> Option<i64> {
    let id = value.as_inst()?;
    let InstKind::Binary { op, lhs, rhs } = &f.inst(id).kind else {
        return None;
    };
    let sign = match op {
        BinOp::Add => 1,
        BinOp::Sub => -1,
        _ => return None,
    };
    let (load_side, const_side) = match (lhs.as_inst(), rhs.as_const_i()) {
        (Some(_), Some(c)) => (*lhs, c),
        _ => match (rhs.as_inst(), lhs.as_const_i()) {
            // `c - v` is not an induction update; only allow `c + v`.
            (Some(_), Some(c)) if *op == BinOp::Add => (*rhs, c),
            _ => return None,
        },
    };
    let lid = load_side.as_inst()?;
    let InstKind::Load { ptr, .. } = &f.inst(lid).kind else {
        return None;
    };
    if named_location(m, f, *ptr).as_deref() == Some(name) {
        Some(sign * const_side)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{CmpPred, SrcLoc};
    use crate::types::Type;

    /// Build `for (it = 0; it < 10; it = it + 1) { body }` with the header
    /// at source line `hline`; returns (module, function index not needed).
    fn counted_loop(hline: u32) -> Module {
        let mut m = Module::new();
        let mut b =
            FunctionBuilder::new(Function::new("main", vec![], Type::Void, SrcLoc::new(1, 1)));
        b.set_loc(2, 1);
        let it = b.alloca("it", Type::I64);
        b.store(Value::ConstI(0), it, Type::I64);
        let header = b.new_block();
        b.set_loc(hline, 1);
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        b.set_loc(hline, 1);
        let iv = b.load(it, Type::I64);
        let c = b.cmp(CmpPred::Lt, iv, Value::ConstI(10), false);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        b.set_loc(hline + 1, 1);
        let iv2 = b.load(it, Type::I64);
        let inc = b.binary(BinOp::Add, iv2, Value::ConstI(1));
        b.store(inc, it, Type::I64);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        // Header block loc was set when the block was created; fix it up so
        // outermost_in_region sees the header line.
        let mut f = b.finish();
        f.blocks[1].loc = SrcLoc::new(hline, 1);
        m.add_function(f);
        m
    }

    #[test]
    fn detects_single_loop() {
        let m = counted_loop(13);
        let f = m.function(crate::module::FuncId(0));
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(&cfg);
        let forest = LoopForest::compute(f, &cfg, &dom);
        assert_eq!(forest.loops.len(), 1);
        let l = &forest.loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.depth, 1);
        assert!(l.contains(BlockId(2)));
        assert!(!l.contains(BlockId(3)));
    }

    #[test]
    fn induction_variable_found() {
        let m = counted_loop(13);
        let f = m.function(crate::module::FuncId(0));
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(&cfg);
        let forest = LoopForest::compute(f, &cfg, &dom);
        let cv = control_variables(&m, f, &forest.loops[0]);
        assert_eq!(cv.len(), 1);
        assert_eq!(cv[0].name, "it");
        assert!(cv[0].is_basic_induction);
        assert_eq!(cv[0].step, Some(1));
    }

    #[test]
    fn region_lookup_uses_header_line() {
        let m = counted_loop(13);
        let f = m.function(crate::module::FuncId(0));
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(&cfg);
        let forest = LoopForest::compute(f, &cfg, &dom);
        assert_eq!(forest.outermost_in_region(f, 13, 20), Some(0));
        assert_eq!(forest.outermost_in_region(f, 14, 20), None);
    }

    /// Nested loops: outer over `i`, inner over `j`.
    #[test]
    fn nesting_and_depths() {
        let mut m = Module::new();
        let mut b =
            FunctionBuilder::new(Function::new("main", vec![], Type::Void, SrcLoc::new(1, 1)));
        b.set_loc(2, 1);
        let i = b.alloca("i", Type::I64);
        let j = b.alloca("j", Type::I64);
        b.store(Value::ConstI(0), i, Type::I64);
        let oh = b.new_block();
        let ob = b.new_block();
        let ih = b.new_block();
        let ib = b.new_block();
        let oe = b.new_block();
        let ie = b.new_block();
        b.br(oh);
        b.switch_to(oh);
        let iv = b.load(i, Type::I64);
        let c = b.cmp(CmpPred::Lt, iv, Value::ConstI(3), false);
        b.cond_br(c, ob, oe);
        b.switch_to(ob);
        b.store(Value::ConstI(0), j, Type::I64);
        b.br(ih);
        b.switch_to(ih);
        let jv = b.load(j, Type::I64);
        let cj = b.cmp(CmpPred::Lt, jv, Value::ConstI(4), false);
        b.cond_br(cj, ib, ie);
        b.switch_to(ib);
        let jv2 = b.load(j, Type::I64);
        let jinc = b.binary(BinOp::Add, jv2, Value::ConstI(1));
        b.store(jinc, j, Type::I64);
        b.br(ih);
        b.switch_to(ie);
        let iv2 = b.load(i, Type::I64);
        let iinc = b.binary(BinOp::Add, iv2, Value::ConstI(1));
        b.store(iinc, i, Type::I64);
        b.br(oh);
        b.switch_to(oe);
        b.ret(None);
        let f = b.finish();
        m.add_function(f);
        let f = m.function(crate::module::FuncId(0));
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(&cfg);
        let forest = LoopForest::compute(f, &cfg, &dom);
        assert_eq!(forest.loops.len(), 2);
        let outer = forest
            .loops
            .iter()
            .position(|l| l.depth == 1)
            .expect("outer loop");
        let inner = forest
            .loops
            .iter()
            .position(|l| l.depth == 2)
            .expect("inner loop");
        assert_eq!(forest.loops[inner].parent, Some(outer));
        assert!(forest.loops[outer]
            .body
            .is_superset(&forest.loops[inner].body));
        assert_eq!(forest.outermost().collect::<Vec<_>>(), vec![outer]);
    }

    /// A `while (done == 0 && ts < n)`-style loop has two control variables,
    /// only one of which is a basic induction variable — mirroring the
    /// paper's miniAMR row where both `done` and `ts` are "Index".
    #[test]
    fn flag_controlled_loop_has_two_control_vars() {
        let mut m = Module::new();
        let mut b =
            FunctionBuilder::new(Function::new("main", vec![], Type::Void, SrcLoc::new(1, 1)));
        b.set_loc(2, 1);
        let ts = b.alloca("ts", Type::I64);
        let done = b.alloca("done", Type::I64);
        b.store(Value::ConstI(0), ts, Type::I64);
        b.store(Value::ConstI(0), done, Type::I64);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let d = b.load(done, Type::I64);
        let c1 = b.cmp(CmpPred::Eq, d, Value::ConstI(0), false);
        let t = b.load(ts, Type::I64);
        let c2 = b.cmp(CmpPred::Lt, t, Value::ConstI(100), false);
        let both = b.binary(BinOp::And, c1, c2);
        b.cond_br(both, body, exit);
        b.switch_to(body);
        let t2 = b.load(ts, Type::I64);
        let tinc = b.binary(BinOp::Add, t2, Value::ConstI(1));
        b.store(tinc, ts, Type::I64);
        let t3 = b.load(ts, Type::I64);
        let fin = b.cmp(CmpPred::Ge, t3, Value::ConstI(50), false);
        let finz = b.cast(crate::inst::CastOp::ZExt, fin);
        b.store(finz, done, Type::I64);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        m.add_function(b.finish());
        let f = m.function(crate::module::FuncId(0));
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(&cfg);
        let forest = LoopForest::compute(f, &cfg, &dom);
        assert_eq!(forest.loops.len(), 1);
        let mut cv = control_variables(&m, f, &forest.loops[0]);
        cv.sort_by(|a, b| a.name.cmp(&b.name));
        assert_eq!(cv.len(), 2);
        assert_eq!(cv[0].name, "done");
        assert!(!cv[0].is_basic_induction);
        assert_eq!(cv[1].name, "ts");
        assert!(cv[1].is_basic_induction);
    }

    #[test]
    fn loop_invariant_bound_is_not_a_control_var() {
        // `i < n` where n is never stored inside the loop.
        let mut m = Module::new();
        let mut b =
            FunctionBuilder::new(Function::new("main", vec![], Type::Void, SrcLoc::new(1, 1)));
        let i = b.alloca("i", Type::I64);
        let n = b.alloca("n", Type::I64);
        b.store(Value::ConstI(0), i, Type::I64);
        b.store(Value::ConstI(10), n, Type::I64);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let iv = b.load(i, Type::I64);
        let nv = b.load(n, Type::I64);
        let c = b.cmp(CmpPred::Lt, iv, nv, false);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let iv2 = b.load(i, Type::I64);
        let inc = b.binary(BinOp::Add, iv2, Value::ConstI(1));
        b.store(inc, i, Type::I64);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        m.add_function(b.finish());
        let f = m.function(crate::module::FuncId(0));
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(&cfg);
        let forest = LoopForest::compute(f, &cfg, &dom);
        let cv = control_variables(&m, f, &forest.loops[0]);
        assert_eq!(cv.len(), 1);
        assert_eq!(cv[0].name, "i");
    }
}
