//! Functions, basic blocks, globals, and the module container.

use crate::inst::{Inst, InstKind, RegName, SrcLoc};
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a basic block within a function.
    BlockId
);
id_type!(
    /// Identifies an instruction within a function's arena.
    InstId
);
id_type!(
    /// Identifies a global variable within a module.
    GlobalId
);
id_type!(
    /// Identifies a function within a module.
    FuncId
);

/// A basic block: a label plus an ordered list of instructions ending in a
/// terminator.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Numeric label, unique within the function; traces print it in the
    /// "basic block label" field.
    pub label: u32,
    /// Source location of the block's leading statement (traces print this
    /// in the "basic block ID" field as `line:col`).
    pub loc: SrcLoc,
    /// Instructions in execution order.
    pub insts: Vec<InstId>,
}

/// A formal parameter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Param {
    /// Source-level parameter name (the trace's "parameter" register name,
    /// e.g. `p`/`q` in paper Fig. 6(b)).
    pub name: String,
    /// Parameter type.
    pub ty: Type,
}

/// A function definition.
#[derive(Clone, Debug)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Return type.
    pub ret: Type,
    /// Basic blocks, entry first.
    pub blocks: Vec<Block>,
    /// Instruction arena; `InstId` indexes into this.
    pub insts: Vec<Inst>,
    /// Source location of the function definition.
    pub loc: SrcLoc,
    next_temp: u32,
    next_label: u32,
}

impl Function {
    /// Create an empty function with an entry block.
    pub fn new(name: impl Into<String>, params: Vec<Param>, ret: Type, loc: SrcLoc) -> Self {
        let mut f = Function {
            name: name.into(),
            params,
            ret,
            blocks: Vec::new(),
            insts: Vec::new(),
            loc,
            next_temp: 0,
            next_label: 0,
        };
        f.add_block(loc);
        f
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Append a new, empty block and return its id.
    pub fn add_block(&mut self, loc: SrcLoc) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        let label = self.next_label;
        self.next_label += 1;
        self.blocks.push(Block {
            label,
            loc,
            insts: Vec::new(),
        });
        id
    }

    /// Allocate the next temporary register number.
    pub fn fresh_temp(&mut self) -> u32 {
        let t = self.next_temp;
        self.next_temp += 1;
        t
    }

    /// Append an instruction to `block`; the result name is chosen from the
    /// instruction kind (`Var` for allocas, a fresh temp for value-producing
    /// instructions, `None` otherwise).
    pub fn push_inst(&mut self, block: BlockId, kind: InstKind, loc: SrcLoc) -> InstId {
        let name = match &kind {
            InstKind::Alloca { var, .. } => RegName::Var(var.clone()),
            _ => {
                let probe = Inst {
                    kind: kind.clone(),
                    loc,
                    name: RegName::None,
                };
                if probe.has_result() {
                    RegName::Temp(self.fresh_temp())
                } else {
                    RegName::None
                }
            }
        };
        let id = InstId(self.insts.len() as u32);
        self.insts.push(Inst { kind, loc, name });
        self.blocks[block.index()].insts.push(id);
        id
    }

    /// Immutable access to an instruction.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()]
    }

    /// The block containing `id`, by linear search (used by the verifier and
    /// tests, not by hot paths).
    pub fn block_of(&self, id: InstId) -> Option<BlockId> {
        self.blocks
            .iter()
            .position(|b| b.insts.contains(&id))
            .map(|i| BlockId(i as u32))
    }

    /// The terminator of `block`, if present.
    pub fn terminator(&self, block: BlockId) -> Option<&Inst> {
        self.blocks[block.index()]
            .insts
            .last()
            .map(|id| self.inst(*id))
            .filter(|i| i.is_terminator())
    }

    /// Iterate over `(InstId, &Inst)` in block order.
    pub fn iter_insts(&self) -> impl Iterator<Item = (InstId, &Inst)> + '_ {
        self.blocks
            .iter()
            .flat_map(move |b| b.insts.iter().map(move |id| (*id, self.inst(*id))))
    }

    /// Find the index of a parameter by name.
    pub fn param_index(&self, name: &str) -> Option<u32> {
        self.params
            .iter()
            .position(|p| p.name == name)
            .map(|i| i as u32)
    }
}

/// Initial contents of a global variable.
#[derive(Clone, Debug, PartialEq)]
pub enum GlobalInit {
    /// All-zero storage.
    Zero,
    /// A scalar integer.
    I64(i64),
    /// A scalar double.
    F64(f64),
}

/// A module-level global variable.
#[derive(Clone, Debug)]
pub struct Global {
    /// Source-level name.
    pub name: String,
    /// Storage type.
    pub ty: Type,
    /// Initializer.
    pub init: GlobalInit,
    /// Declaration location.
    pub loc: SrcLoc,
}

/// A compilation unit: globals plus functions.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// Global variables.
    pub globals: Vec<Global>,
    /// Function definitions.
    pub functions: Vec<Function>,
    by_name: HashMap<String, FuncId>,
    globals_by_name: HashMap<String, GlobalId>,
}

impl Module {
    /// An empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Add a global; the name must be unique.
    pub fn add_global(&mut self, g: Global) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        assert!(
            self.globals_by_name.insert(g.name.clone(), id).is_none(),
            "duplicate global `{}`",
            g.name
        );
        self.globals.push(g);
        id
    }

    /// Add a function; the name must be unique.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        assert!(
            self.by_name.insert(f.name.clone(), id).is_none(),
            "duplicate function `{}`",
            f.name
        );
        self.functions.push(f);
        id
    }

    /// Look up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.by_name.get(name).copied()
    }

    /// Look up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals_by_name.get(name).copied()
    }

    /// Immutable access to a function.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Immutable access to a global.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    /// Total number of instructions across all functions.
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(|f| f.insts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn loc(l: u32) -> SrcLoc {
        SrcLoc::new(l, 1)
    }

    #[test]
    fn function_starts_with_entry_block() {
        let f = Function::new("main", vec![], Type::I64, loc(1));
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.entry(), BlockId(0));
    }

    #[test]
    fn push_inst_names_results() {
        let mut f = Function::new("main", vec![], Type::Void, loc(1));
        let e = f.entry();
        let a = f.push_inst(
            e,
            InstKind::Alloca {
                ty: Type::I64,
                var: "sum".into(),
            },
            loc(2),
        );
        assert_eq!(f.inst(a).name, RegName::Var("sum".into()));

        let ld = f.push_inst(
            e,
            InstKind::Load {
                ptr: Value::Inst(a),
                ty: Type::I64,
            },
            loc(3),
        );
        assert!(matches!(f.inst(ld).name, RegName::Temp(_)));

        let st = f.push_inst(
            e,
            InstKind::Store {
                value: Value::ConstI(0),
                ptr: Value::Inst(a),
                ty: Type::I64,
            },
            loc(3),
        );
        assert_eq!(f.inst(st).name, RegName::None);
        assert_eq!(f.block_of(st), Some(e));
    }

    #[test]
    fn temp_numbers_are_sequential() {
        let mut f = Function::new("f", vec![], Type::Void, loc(1));
        let e = f.entry();
        let a = f.push_inst(
            e,
            InstKind::Alloca {
                ty: Type::I64,
                var: "x".into(),
            },
            loc(1),
        );
        let l1 = f.push_inst(
            e,
            InstKind::Load {
                ptr: Value::Inst(a),
                ty: Type::I64,
            },
            loc(2),
        );
        let l2 = f.push_inst(
            e,
            InstKind::Load {
                ptr: Value::Inst(a),
                ty: Type::I64,
            },
            loc(2),
        );
        let t1 = match &f.inst(l1).name {
            RegName::Temp(n) => *n,
            _ => panic!(),
        };
        let t2 = match &f.inst(l2).name {
            RegName::Temp(n) => *n,
            _ => panic!(),
        };
        assert_eq!(t2, t1 + 1);
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new();
        let g = m.add_global(Global {
            name: "twiddle".into(),
            ty: Type::Array(Box::new(Type::F64), 8),
            init: GlobalInit::Zero,
            loc: loc(1),
        });
        let f = m.add_function(Function::new("main", vec![], Type::I64, loc(3)));
        assert_eq!(m.global_by_name("twiddle"), Some(g));
        assert_eq!(m.function_by_name("main"), Some(f));
        assert_eq!(m.function_by_name("nope"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate function")]
    fn duplicate_function_panics() {
        let mut m = Module::new();
        m.add_function(Function::new("f", vec![], Type::Void, loc(1)));
        m.add_function(Function::new("f", vec![], Type::Void, loc(2)));
    }

    #[test]
    fn terminator_detection() {
        let mut f = Function::new("f", vec![], Type::Void, loc(1));
        let e = f.entry();
        assert!(f.terminator(e).is_none());
        f.push_inst(e, InstKind::Ret { value: None }, loc(2));
        assert!(f.terminator(e).is_some());
    }
}
