//! The IR type system.
//!
//! MiniLang only needs integers, doubles, fixed-size arrays of those, and
//! pointers (for array-typed function parameters), so the type language is
//! kept minimal. Sizes follow the LP64 model the paper's traces use: `i64`
//! and `f64` are 8 bytes, pointers are 8 bytes, `i1` occupies one byte in
//! memory but is traced as a 1-bit operand.

use std::fmt;

/// An IR type.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    /// No value (function return type only).
    Void,
    /// Booleans produced by comparisons.
    I1,
    /// 64-bit signed integer (MiniLang `int`).
    I64,
    /// IEEE-754 double (MiniLang `float`).
    F64,
    /// Pointer to a pointee type. Array parameters decay to pointers,
    /// exactly as in C.
    Ptr(Box<Type>),
    /// Fixed-size array, used for the storage of array variables
    /// (`Alloca`/globals). Values of array type never flow through
    /// registers; they are always manipulated element-wise via
    /// `GetElementPtr`.
    Array(Box<Type>, u64),
}

impl Type {
    /// Pointer to `self`.
    pub fn ptr_to(&self) -> Type {
        Type::Ptr(Box::new(self.clone()))
    }

    /// Size of a value of this type in bytes when stored in memory.
    pub fn byte_size(&self) -> u64 {
        match self {
            Type::Void => 0,
            Type::I1 => 1,
            Type::I64 | Type::F64 | Type::Ptr(_) => 8,
            Type::Array(elem, n) => elem.byte_size() * n,
        }
    }

    /// Size in bits as reported in trace operand records (`64`/`32`/`1`).
    ///
    /// LLVM-Tracer prints the *value* width, so arrays report the width of
    /// the pointer through which they are touched.
    pub fn bit_size(&self) -> u16 {
        match self {
            Type::Void => 0,
            Type::I1 => 1,
            Type::I64 | Type::F64 | Type::Ptr(_) => 64,
            Type::Array(..) => 64,
        }
    }

    /// The element type for pointer/array types.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) => Some(t),
            Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Number of elements for array types, 1 for scalars.
    pub fn elem_count(&self) -> u64 {
        match self {
            Type::Array(_, n) => *n,
            _ => 1,
        }
    }

    /// True for `I1`/`I64`.
    pub fn is_int(&self) -> bool {
        matches!(self, Type::I1 | Type::I64)
    }

    /// True for `F64`.
    pub fn is_float(&self) -> bool {
        matches!(self, Type::F64)
    }

    /// True for scalar first-class values that can live in a register.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::I1 | Type::I64 | Type::F64 | Type::Ptr(_))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::I1 => write!(f, "i1"),
            Type::I64 => write!(f, "i64"),
            Type::F64 => write!(f, "f64"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Array(t, n) => write!(f, "[{n} x {t}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_sizes_follow_lp64() {
        assert_eq!(Type::I64.byte_size(), 8);
        assert_eq!(Type::F64.byte_size(), 8);
        assert_eq!(Type::I64.ptr_to().byte_size(), 8);
        assert_eq!(Type::I1.byte_size(), 1);
        assert_eq!(Type::Array(Box::new(Type::F64), 10).byte_size(), 80);
        assert_eq!(
            Type::Array(Box::new(Type::Array(Box::new(Type::I64), 4)), 3).byte_size(),
            96
        );
    }

    #[test]
    fn bit_sizes_match_trace_operand_widths() {
        assert_eq!(Type::I64.bit_size(), 64);
        assert_eq!(Type::I1.bit_size(), 1);
        assert_eq!(Type::Array(Box::new(Type::I64), 8).bit_size(), 64);
    }

    #[test]
    fn pointee_and_elem_count() {
        let arr = Type::Array(Box::new(Type::F64), 12);
        assert_eq!(arr.pointee(), Some(&Type::F64));
        assert_eq!(arr.elem_count(), 12);
        assert_eq!(Type::I64.elem_count(), 1);
        let p = Type::F64.ptr_to();
        assert_eq!(p.pointee(), Some(&Type::F64));
        assert_eq!(Type::I64.pointee(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::I64.to_string(), "i64");
        assert_eq!(Type::F64.ptr_to().to_string(), "f64*");
        assert_eq!(Type::Array(Box::new(Type::I64), 3).to_string(), "[3 x i64]");
    }

    #[test]
    fn scalar_classification() {
        assert!(Type::I64.is_scalar());
        assert!(Type::F64.ptr_to().is_scalar());
        assert!(!Type::Array(Box::new(Type::I64), 2).is_scalar());
        assert!(!Type::Void.is_scalar());
        assert!(Type::I1.is_int());
        assert!(Type::F64.is_float());
    }
}
