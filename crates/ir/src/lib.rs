//! A small LLVM-3.4-flavoured intermediate representation.
//!
//! This crate is the substrate that replaces LLVM/Clang 3.4 in the AutoCheck
//! reproduction. It deliberately models the *exact* instruction families the
//! AutoCheck analysis consumes (paper Table I) — `Alloca`, `Load`, `Store`,
//! `GetElementPtr`, `BitCast`, the arithmetic family `Add`..`FDiv`, and
//! `Call` — plus the control-flow instructions (`Br`, `ICmp`/`FCmp`, `Ret`)
//! needed to run real programs, and it reuses LLVM 3.4's *numeric opcode
//! values* so the emitted traces line up with the figures in the paper
//! (`Load` = 27, `Alloca` = 26, `Call` = 49, ...).
//!
//! The IR is *memory-based*, like Clang's `-O0` output: every source-level
//! variable becomes an [`InstKind::Alloca`] (or a module [`Global`]) and is
//! accessed through `Load`/`Store`. That shape is what LLVM-Tracer traces and
//! what AutoCheck's reg-var map is designed around, so we keep it rather than
//! running mem2reg.
//!
//! Structure:
//!
//! * [`types`] — the tiny type system (`i1`, `i64`, `f64`, pointers, arrays);
//! * [`value`] — SSA values: instruction results, parameters, globals,
//!   constants;
//! * [`inst`] — instructions and their LLVM-3.4 opcode numbers;
//! * [`module`] — functions, basic blocks, globals, and the [`Module`]
//!   container;
//! * [`builder`] — a cursor-style construction API used by the MiniLang
//!   lowering;
//! * [`mod@cfg`] — successor/predecessor computation;
//! * [`dom`] — dominator tree (Cooper–Harvey–Kennedy);
//! * [`loops`] — natural-loop detection and induction/control-variable
//!   analysis, our stand-in for the paper's "llvm-pass-loop API";
//! * [`verify`] — a structural and type verifier;
//! * [`printer`] — a human-readable textual dump.

pub mod builder;
pub mod cfg;
pub mod dom;
pub mod inst;
pub mod loops;
pub mod module;
pub mod printer;
pub mod types;
pub mod value;
pub mod verify;

pub use builder::FunctionBuilder;
pub use cfg::Cfg;
pub use dom::DomTree;
pub use inst::{BinOp, Builtin, Callee, CastOp, CmpPred, Inst, InstKind, Opcode, RegName, SrcLoc};
pub use loops::{ControlVar, Loop, LoopForest};
pub use module::{
    Block, BlockId, FuncId, Function, Global, GlobalId, GlobalInit, InstId, Module, Param,
};
pub use types::Type;
pub use value::Value;
pub use verify::{verify_function, verify_module, VerifyError};
