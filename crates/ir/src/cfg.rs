//! Control-flow graph: successor and predecessor sets per basic block.

use crate::inst::InstKind;
use crate::module::{BlockId, Function};

/// The CFG of one function.
#[derive(Clone, Debug)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
}

impl Cfg {
    /// Compute the CFG of `f`. Blocks without terminators contribute no
    /// edges (the verifier reports those separately).
    pub fn compute(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for (i, _) in f.blocks.iter().enumerate() {
            let bid = BlockId(i as u32);
            if let Some(term) = f.terminator(bid) {
                match &term.kind {
                    InstKind::Br { target } => succs[i].push(*target),
                    InstKind::CondBr {
                        then_bb, else_bb, ..
                    } => {
                        succs[i].push(*then_bb);
                        if then_bb != else_bb {
                            succs[i].push(*else_bb);
                        }
                    }
                    _ => {}
                }
            }
        }
        for (i, ss) in succs.iter().enumerate() {
            for s in ss {
                preds[s.index()].push(BlockId(i as u32));
            }
        }
        let rpo = reverse_postorder(&succs, n);
        Cfg { succs, preds, rpo }
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessors of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Blocks in reverse postorder from the entry. Unreachable blocks are
    /// excluded.
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Number of blocks (including unreachable ones).
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True when the function has no blocks.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// True if `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo.contains(&b)
    }
}

fn reverse_postorder(succs: &[Vec<BlockId>], n: usize) -> Vec<BlockId> {
    if n == 0 {
        return Vec::new();
    }
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS keeping an explicit "next successor" index per frame so
    // the postorder matches the recursive definition.
    let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
    visited[0] = true;
    while let Some((b, i)) = stack.last_mut() {
        let ss = &succs[b.index()];
        if *i < ss.len() {
            let next = ss[*i];
            *i += 1;
            if !visited[next.index()] {
                visited[next.index()] = true;
                stack.push((next, 0));
            }
        } else {
            post.push(*b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{CmpPred, SrcLoc};
    use crate::types::Type;
    use crate::value::Value;

    /// entry -> header -> {body -> header, exit}
    fn loop_func() -> Function {
        let mut b = FunctionBuilder::new(Function::new("f", vec![], Type::Void, SrcLoc::new(1, 1)));
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let c = b.cmp(CmpPred::Lt, Value::ConstI(0), Value::ConstI(1), false);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn loop_edges() {
        let f = loop_func();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1)]);
        assert_eq!(cfg.succs(BlockId(1)), &[BlockId(2), BlockId(3)]);
        assert_eq!(cfg.succs(BlockId(2)), &[BlockId(1)]);
        assert!(cfg.succs(BlockId(3)).is_empty());
        assert_eq!(cfg.preds(BlockId(1)).len(), 2);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = loop_func();
        let cfg = Cfg::compute(&f);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
        // Header precedes body and exit in RPO.
        let pos = |b: BlockId| rpo.iter().position(|x| *x == b).unwrap();
        assert!(pos(BlockId(1)) < pos(BlockId(2)));
        assert!(pos(BlockId(1)) < pos(BlockId(3)));
    }

    #[test]
    fn unreachable_block_excluded_from_rpo() {
        let mut b = FunctionBuilder::new(Function::new("g", vec![], Type::Void, SrcLoc::new(1, 1)));
        let dead = b.new_block();
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.reverse_postorder().len(), 1);
    }

    #[test]
    fn same_target_condbr_yields_single_edge() {
        let mut b = FunctionBuilder::new(Function::new("h", vec![], Type::Void, SrcLoc::new(1, 1)));
        let t = b.new_block();
        let c = b.cmp(CmpPred::Eq, Value::ConstI(1), Value::ConstI(1), false);
        b.cond_br(c, t, t);
        b.switch_to(t);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.succs(BlockId(0)).len(), 1);
        assert_eq!(cfg.preds(t).len(), 1);
    }
}
