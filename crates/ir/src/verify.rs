//! Structural and type verification of IR modules.
//!
//! The verifier is run by the MiniLang lowering tests and by the interpreter
//! before execution; it catches malformed CFGs and operand type errors early,
//! with readable diagnostics.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::inst::{BinOp, Callee, CastOp, Inst, InstKind};
use crate::module::{BlockId, Function, InstId, Module};
use crate::types::Type;
use crate::value::Value;
use std::fmt;

/// One verification failure.
#[derive(Clone, Debug, PartialEq)]
pub struct VerifyError {
    /// Function where the error was found.
    pub function: String,
    /// Offending instruction, if the error is instruction-level.
    pub inst: Option<InstId>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inst {
            Some(id) => write!(f, "{}: inst %i{}: {}", self.function, id.0, self.message),
            None => write!(f, "{}: {}", self.function, self.message),
        }
    }
}

/// Verify every function of `m`.
pub fn verify_module(m: &Module) -> Result<(), Vec<VerifyError>> {
    let mut errs = Vec::new();
    for f in &m.functions {
        if let Err(mut e) = verify_function(m, f) {
            errs.append(&mut e);
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// Verify a single function.
pub fn verify_function(m: &Module, f: &Function) -> Result<(), Vec<VerifyError>> {
    let mut v = Verifier {
        m,
        f,
        errs: Vec::new(),
    };
    v.run();
    if v.errs.is_empty() {
        Ok(())
    } else {
        Err(v.errs)
    }
}

struct Verifier<'a> {
    m: &'a Module,
    f: &'a Function,
    errs: Vec<VerifyError>,
}

impl<'a> Verifier<'a> {
    fn err(&mut self, inst: Option<InstId>, message: String) {
        self.errs.push(VerifyError {
            function: self.f.name.clone(),
            inst,
            message,
        });
    }

    fn run(&mut self) {
        self.check_block_shape();
        let cfg = Cfg::compute(self.f);
        let dom = DomTree::compute(&cfg);
        self.check_operands(&cfg, &dom);
    }

    /// Every reachable block must end with exactly one terminator, and
    /// terminators must not appear mid-block.
    fn check_block_shape(&mut self) {
        for (bi, block) in self.f.blocks.iter().enumerate() {
            let bid = BlockId(bi as u32);
            match block.insts.last() {
                None => self.err(None, format!("block {} is empty", bid)),
                Some(last) => {
                    if !self.f.inst(*last).is_terminator() {
                        self.err(
                            Some(*last),
                            format!("block {} does not end with a terminator", bid),
                        );
                    }
                }
            }
            for &id in block.insts.iter().rev().skip(1) {
                if self.f.inst(id).is_terminator() {
                    self.err(Some(id), format!("terminator in the middle of block {bid}"));
                }
            }
        }
        // Branch targets must exist.
        for (id, inst) in self.f.iter_insts() {
            let targets: Vec<BlockId> = match &inst.kind {
                InstKind::Br { target } => vec![*target],
                InstKind::CondBr {
                    then_bb, else_bb, ..
                } => vec![*then_bb, *else_bb],
                _ => continue,
            };
            for t in targets {
                if t.index() >= self.f.blocks.len() {
                    self.err(Some(id), format!("branch to nonexistent block {t}"));
                }
            }
        }
    }

    /// The type of a value, if determinable.
    fn type_of(&self, v: Value) -> Option<Type> {
        match v {
            Value::ConstI(_) => Some(Type::I64),
            Value::ConstF(_) => Some(Type::F64),
            Value::ConstBool(_) => Some(Type::I1),
            Value::Param(i) => self.f.params.get(i as usize).map(|p| p.ty.clone()),
            Value::Global(g) => {
                let t = &self.m.global(g).ty;
                Some(match t {
                    Type::Array(elem, _) => elem.ptr_to(),
                    other => other.ptr_to(),
                })
            }
            Value::Inst(id) => {
                let inst = self.f.insts.get(id.index())?;
                self.result_type(inst)
            }
        }
    }

    fn result_type(&self, inst: &Inst) -> Option<Type> {
        match &inst.kind {
            InstKind::Alloca { ty, .. } => Some(match ty {
                Type::Array(elem, _) => elem.ptr_to(),
                other => other.ptr_to(),
            }),
            InstKind::Load { ty, .. } => Some(ty.clone()),
            InstKind::Store { .. } => None,
            InstKind::Gep { elem, .. } => Some(elem.ptr_to()),
            InstKind::BitCast { to, .. } => Some(to.clone()),
            InstKind::Binary { op, .. } => Some(if op.is_float() { Type::F64 } else { Type::I64 }),
            InstKind::Cmp { .. } => Some(Type::I1),
            InstKind::Cast { op, .. } => Some(match op {
                CastOp::SiToFp => Type::F64,
                CastOp::FpToSi => Type::I64,
                CastOp::ZExt => Type::I64,
            }),
            InstKind::Call { callee, .. } => match callee {
                Callee::Builtin(b) => Some(b.ret_type()),
                Callee::Function(fid) => Some(self.m.function(*fid).ret.clone()),
            },
            InstKind::Ret { .. } | InstKind::Br { .. } | InstKind::CondBr { .. } => None,
        }
    }

    fn check_operands(&mut self, cfg: &Cfg, dom: &DomTree) {
        // Instruction-result operands must refer to existing instructions
        // whose definition dominates the use.
        let block_of: Vec<Option<BlockId>> = {
            let mut v = vec![None; self.f.insts.len()];
            for (bi, block) in self.f.blocks.iter().enumerate() {
                for &id in &block.insts {
                    v[id.index()] = Some(BlockId(bi as u32));
                }
            }
            v
        };
        let pos_in_block: Vec<usize> = {
            let mut v = vec![0usize; self.f.insts.len()];
            for block in &self.f.blocks {
                for (i, &id) in block.insts.iter().enumerate() {
                    v[id.index()] = i;
                }
            }
            v
        };
        for (use_id, inst) in self.f.iter_insts() {
            for op in inst.operands() {
                match op {
                    Value::Inst(def_id) => {
                        if def_id.index() >= self.f.insts.len() {
                            self.err(
                                Some(use_id),
                                format!("operand %i{} does not exist", def_id.0),
                            );
                            continue;
                        }
                        let (Some(def_bb), Some(use_bb)) =
                            (block_of[def_id.index()], block_of[use_id.index()])
                        else {
                            self.err(Some(use_id), "operand not inside a block".to_string());
                            continue;
                        };
                        if !cfg.is_reachable(use_bb) {
                            continue; // dominance is vacuous in dead code
                        }
                        let ok = if def_bb == use_bb {
                            pos_in_block[def_id.index()] < pos_in_block[use_id.index()]
                        } else {
                            dom.dominates(def_bb, use_bb)
                        };
                        if !ok {
                            self.err(
                                Some(use_id),
                                format!("use of %i{} does not follow its definition", def_id.0),
                            );
                        }
                    }
                    Value::Param(i) if i as usize >= self.f.params.len() => {
                        self.err(Some(use_id), format!("parameter index {i} out of range"));
                    }
                    Value::Global(g) if g.index() >= self.m.globals.len() => {
                        self.err(Some(use_id), format!("global @g{} does not exist", g.0));
                    }
                    _ => {}
                }
            }
            self.check_types(use_id, inst);
        }
    }

    fn check_types(&mut self, id: InstId, inst: &Inst) {
        match &inst.kind {
            InstKind::Binary { op, lhs, rhs } => {
                let want = if op.is_float() { Type::F64 } else { Type::I64 };
                for (side, v) in [("lhs", lhs), ("rhs", rhs)] {
                    match self.type_of(*v) {
                        Some(t)
                            if t == want
                                // Integer ops also accept i1 (from zext-less
                                // logical combinations in conditions).
                                || (!op.is_float() && t == Type::I1) => {}
                        Some(t) => self.err(
                            Some(id),
                            format!(
                                "{} operand of {} has type {t}, expected {want}",
                                side,
                                op.mnemonic()
                            ),
                        ),
                        None => self.err(Some(id), format!("{side} operand has no type")),
                    }
                }
                if matches!(op, BinOp::UDiv | BinOp::SDiv | BinOp::FDiv) {
                    // Nothing structural to check; division by zero is a
                    // runtime error handled by the interpreter.
                }
            }
            InstKind::Cmp {
                lhs, rhs, float, ..
            } => {
                let want = if *float { Type::F64 } else { Type::I64 };
                for v in [lhs, rhs] {
                    match self.type_of(*v) {
                        Some(t) if t == want || (!*float && t == Type::I1) => {}
                        Some(t) => self.err(
                            Some(id),
                            format!("cmp operand has type {t}, expected {want}"),
                        ),
                        None => self.err(Some(id), "cmp operand has no type".into()),
                    }
                }
            }
            InstKind::Load { ptr, ty } => match self.type_of(*ptr) {
                Some(Type::Ptr(p)) if *p == *ty => {}
                Some(t) => self.err(
                    Some(id),
                    format!("load of {ty} through pointer of type {t}"),
                ),
                None => self.err(Some(id), "load pointer has no type".into()),
            },
            InstKind::Store { value, ptr, ty } => {
                match self.type_of(*ptr) {
                    Some(Type::Ptr(p)) if *p == *ty => {}
                    Some(t) => self.err(
                        Some(id),
                        format!("store of {ty} through pointer of type {t}"),
                    ),
                    None => self.err(Some(id), "store pointer has no type".into()),
                }
                match self.type_of(*value) {
                    Some(t) if t == *ty => {}
                    Some(t) => {
                        self.err(Some(id), format!("store value has type {t}, expected {ty}"))
                    }
                    None => self.err(Some(id), "store value has no type".into()),
                }
            }
            InstKind::Gep { base, index, elem } => {
                match self.type_of(*base) {
                    Some(Type::Ptr(p)) if *p == *elem => {}
                    Some(t) => self.err(
                        Some(id),
                        format!("gep over {elem} elements on pointer of type {t}"),
                    ),
                    None => self.err(Some(id), "gep base has no type".into()),
                }
                match self.type_of(*index) {
                    Some(Type::I64) => {}
                    Some(t) => self.err(Some(id), format!("gep index has type {t}, expected i64")),
                    None => self.err(Some(id), "gep index has no type".into()),
                }
            }
            InstKind::CondBr { cond, .. } => match self.type_of(*cond) {
                Some(Type::I1) => {}
                Some(t) => self.err(
                    Some(id),
                    format!("branch condition has type {t}, expected i1"),
                ),
                None => self.err(Some(id), "branch condition has no type".into()),
            },
            InstKind::Call { callee, args } => {
                let (want, name): (Vec<Type>, String) = match callee {
                    Callee::Builtin(b) => {
                        if *b == crate::inst::Builtin::Print {
                            // print accepts one scalar of any numeric type
                            if args.len() != 1 {
                                self.err(Some(id), "print takes exactly one argument".into());
                            }
                            return;
                        }
                        (b.param_types().to_vec(), b.name().to_string())
                    }
                    Callee::Function(fid) => {
                        let callee_f = self.m.function(*fid);
                        (
                            callee_f.params.iter().map(|p| p.ty.clone()).collect(),
                            callee_f.name.clone(),
                        )
                    }
                };
                if want.len() != args.len() {
                    self.err(
                        Some(id),
                        format!(
                            "call to {} with {} args, expected {}",
                            name,
                            args.len(),
                            want.len()
                        ),
                    );
                    return;
                }
                for (i, (a, w)) in args.iter().zip(&want).enumerate() {
                    match self.type_of(*a) {
                        Some(t) if t == *w => {}
                        Some(t) => self.err(
                            Some(id),
                            format!("arg {i} of call to {name} has type {t}, expected {w}"),
                        ),
                        None => {
                            self.err(Some(id), format!("arg {i} of call to {name} has no type"))
                        }
                    }
                }
            }
            InstKind::Ret { value } => match (value, &self.f.ret) {
                (None, Type::Void) => {}
                (Some(v), want) if *want != Type::Void => match self.type_of(*v) {
                    Some(t) if t == *want => {}
                    Some(t) => self.err(Some(id), format!("return of {t}, expected {want}")),
                    None => self.err(Some(id), "return value has no type".into()),
                },
                _ => self.err(Some(id), "return arity does not match function type".into()),
            },
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::SrcLoc;
    use crate::module::Param;

    fn module_with(f: Function) -> Module {
        let mut m = Module::new();
        m.add_function(f);
        m
    }

    #[test]
    fn accepts_well_formed_function() {
        let mut b = FunctionBuilder::new(Function::new(
            "ok",
            vec![Param {
                name: "n".into(),
                ty: Type::I64,
            }],
            Type::I64,
            SrcLoc::new(1, 1),
        ));
        let x = b.alloca("x", Type::I64);
        b.store(Value::Param(0), x, Type::I64);
        let v = b.load(x, Type::I64);
        let d = b.binary(BinOp::Mul, v, Value::ConstI(2));
        b.ret(Some(d));
        let m = module_with(b.finish());
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut f = Function::new("bad", vec![], Type::Void, SrcLoc::new(1, 1));
        let e = f.entry();
        f.push_inst(
            e,
            InstKind::Alloca {
                ty: Type::I64,
                var: "x".into(),
            },
            SrcLoc::new(1, 1),
        );
        let m = module_with(f);
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("terminator")));
    }

    #[test]
    fn rejects_type_mismatch_in_store() {
        let mut b =
            FunctionBuilder::new(Function::new("bad", vec![], Type::Void, SrcLoc::new(1, 1)));
        let x = b.alloca("x", Type::I64);
        b.store(Value::ConstF(1.0), x, Type::I64);
        b.ret(None);
        let m = module_with(b.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("store value has type f64")));
    }

    #[test]
    fn rejects_float_operand_in_integer_add() {
        let mut b =
            FunctionBuilder::new(Function::new("bad2", vec![], Type::Void, SrcLoc::new(1, 1)));
        let v = b.binary(BinOp::Add, Value::ConstF(1.0), Value::ConstI(2));
        let x = b.alloca("x", Type::I64);
        b.store(v, x, Type::I64);
        b.ret(None);
        let m = module_with(b.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("expected i64")));
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut m = Module::new();
        let mut callee = FunctionBuilder::new(Function::new(
            "callee",
            vec![Param {
                name: "a".into(),
                ty: Type::I64,
            }],
            Type::I64,
            SrcLoc::new(1, 1),
        ));
        callee.ret(Some(Value::Param(0)));
        let callee_id = m.add_function(callee.finish());

        let mut caller = FunctionBuilder::new(Function::new(
            "caller",
            vec![],
            Type::Void,
            SrcLoc::new(5, 1),
        ));
        let r = caller.call(callee_id, vec![]);
        let x = caller.alloca("x", Type::I64);
        caller.store(r, x, Type::I64);
        caller.ret(None);
        m.add_function(caller.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("expected 1")));
    }

    #[test]
    fn rejects_use_before_def_across_blocks() {
        // Build: entry jumps to B; B uses a value defined in C (which is
        // never executed before B).
        let mut f = Function::new("ubd", vec![], Type::Void, SrcLoc::new(1, 1));
        let entry = f.entry();
        let b = f.add_block(SrcLoc::new(2, 1));
        let c = f.add_block(SrcLoc::new(3, 1));
        f.push_inst(entry, InstKind::Br { target: b }, SrcLoc::new(1, 1));
        // In C: define an alloca.
        let def = f.push_inst(
            c,
            InstKind::Alloca {
                ty: Type::I64,
                var: "x".into(),
            },
            SrcLoc::new(3, 1),
        );
        f.push_inst(c, InstKind::Ret { value: None }, SrcLoc::new(3, 1));
        // In B: load it (def does not dominate use).
        f.push_inst(
            b,
            InstKind::Load {
                ptr: Value::Inst(def),
                ty: Type::I64,
            },
            SrcLoc::new(2, 1),
        );
        f.push_inst(b, InstKind::Ret { value: None }, SrcLoc::new(2, 1));
        let m = module_with(f);
        let errs = verify_module(&m).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("does not follow its definition")));
    }
}
