//! SSA values: the operands of instructions.

use crate::module::{GlobalId, InstId};
use std::fmt;

/// An operand of an instruction.
///
/// Values are lightweight, copyable references; the instruction arena inside
/// each [`crate::Function`] owns the actual instructions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// Result of another instruction in the same function.
    Inst(InstId),
    /// The n-th formal parameter of the enclosing function.
    Param(u32),
    /// Address of a module-level global variable.
    Global(GlobalId),
    /// 64-bit integer constant.
    ConstI(i64),
    /// Double constant.
    ConstF(f64),
    /// Boolean constant.
    ConstBool(bool),
}

impl Value {
    /// True if this value is a compile-time constant.
    pub fn is_const(&self) -> bool {
        matches!(
            self,
            Value::ConstI(_) | Value::ConstF(_) | Value::ConstBool(_)
        )
    }

    /// The instruction id, if this value is an instruction result.
    pub fn as_inst(&self) -> Option<InstId> {
        match self {
            Value::Inst(id) => Some(*id),
            _ => None,
        }
    }

    /// The constant integer payload, if any.
    pub fn as_const_i(&self) -> Option<i64> {
        match self {
            Value::ConstI(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Inst(id) => write!(f, "%i{}", id.0),
            Value::Param(i) => write!(f, "%arg{i}"),
            Value::Global(g) => write!(f, "@g{}", g.0),
            Value::ConstI(v) => write!(f, "{v}"),
            Value::ConstF(v) => write!(f, "{v:?}"),
            Value::ConstBool(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_classification() {
        assert!(Value::ConstI(3).is_const());
        assert!(Value::ConstF(1.5).is_const());
        assert!(Value::ConstBool(true).is_const());
        assert!(!Value::Param(0).is_const());
        assert!(!Value::Inst(InstId(0)).is_const());
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Inst(InstId(7)).as_inst(), Some(InstId(7)));
        assert_eq!(Value::ConstI(9).as_inst(), None);
        assert_eq!(Value::ConstI(9).as_const_i(), Some(9));
        assert_eq!(Value::ConstF(2.0).as_const_i(), None);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(Value::Inst(InstId(3)).to_string(), "%i3");
        assert_eq!(Value::Param(1).to_string(), "%arg1");
        assert_eq!(Value::ConstI(-4).to_string(), "-4");
    }
}
