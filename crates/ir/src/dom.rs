//! Dominator tree construction.
//!
//! Implements the iterative algorithm of Cooper, Harvey & Kennedy, *A Simple,
//! Fast Dominance Algorithm* — the standard choice for CFGs of this size and
//! the same algorithm LLVM used before semi-NCA.

use crate::cfg::Cfg;
use crate::module::BlockId;

/// Immediate-dominator tree for one function.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// `idom[b]` is the immediate dominator of `b`; the entry maps to itself;
    /// unreachable blocks map to `None`.
    idom: Vec<Option<BlockId>>,
}

impl DomTree {
    /// Compute dominators over `cfg`.
    pub fn compute(cfg: &Cfg) -> DomTree {
        let n = cfg.len();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if n == 0 {
            return DomTree { idom };
        }
        let rpo = cfg.reverse_postorder();
        // Map block -> RPO index for the intersect walk.
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let entry = BlockId(0);
        idom[entry.index()] = Some(entry);

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // First processed predecessor.
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom }
    }

    /// Immediate dominator of `b` (`None` for unreachable blocks; the entry
    /// returns itself).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// True when `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(next) if next != cur => cur = next,
                _ => return false,
            }
        }
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].expect("processed block has idom");
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].expect("processed block has idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{CmpPred, SrcLoc};
    use crate::module::Function;
    use crate::types::Type;
    use crate::value::Value;

    fn cond(b: &mut FunctionBuilder) -> Value {
        b.cmp(CmpPred::Lt, Value::ConstI(0), Value::ConstI(1), false)
    }

    /// Diamond: entry -> {l, r} -> join.
    #[test]
    fn diamond_dominators() {
        let mut b = FunctionBuilder::new(Function::new("d", vec![], Type::Void, SrcLoc::new(1, 1)));
        let l = b.new_block();
        let r = b.new_block();
        let join = b.new_block();
        let c = cond(&mut b);
        b.cond_br(c, l, r);
        b.switch_to(l);
        b.br(join);
        b.switch_to(r);
        b.br(join);
        b.switch_to(join);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        let entry = BlockId(0);
        assert_eq!(dom.idom(l), Some(entry));
        assert_eq!(dom.idom(r), Some(entry));
        assert_eq!(dom.idom(join), Some(entry));
        assert!(dom.dominates(entry, join));
        assert!(!dom.dominates(l, join));
        assert!(dom.dominates(join, join));
    }

    /// entry -> header -> body -> header, header -> exit.
    #[test]
    fn loop_dominators() {
        let mut b = FunctionBuilder::new(Function::new("l", vec![], Type::Void, SrcLoc::new(1, 1)));
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let c = cond(&mut b);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        assert_eq!(dom.idom(header), Some(BlockId(0)));
        assert_eq!(dom.idom(body), Some(header));
        assert_eq!(dom.idom(exit), Some(header));
        assert!(dom.dominates(header, body));
        assert!(!dom.dominates(body, exit));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut b = FunctionBuilder::new(Function::new("u", vec![], Type::Void, SrcLoc::new(1, 1)));
        let dead = b.new_block();
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        assert_eq!(dom.idom(dead), None);
        assert!(!dom.dominates(BlockId(0), dead));
    }
}
