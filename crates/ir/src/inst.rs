//! Instructions and their LLVM-3.4 opcode numbering.

use crate::module::{BlockId, FuncId};
use crate::types::Type;
use crate::value::Value;
use std::fmt;

/// A source location carried by every instruction.
///
/// AutoCheck's pre-processing partitions the dynamic trace by *source line
/// numbers* (the "main computation loop range", MCLR), so locations are a
/// first-class part of the IR, not debug metadata.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct SrcLoc {
    /// 1-based source line; 0 means "synthetic / no location" and is printed
    /// as `-1` in traces, matching LLVM-Tracer's convention for compiler
    /// generated code such as entry-block allocas (paper Fig. 6(c)).
    pub line: u32,
    /// 1-based column; 0 for synthetic code.
    pub col: u32,
}

impl SrcLoc {
    /// A location at `line:col`.
    pub fn new(line: u32, col: u32) -> Self {
        SrcLoc { line, col }
    }

    /// The synthetic location used for compiler-generated instructions.
    pub fn synthetic() -> Self {
        SrcLoc { line: 0, col: 0 }
    }

    /// The line number as traced: `-1` for synthetic locations.
    pub fn trace_line(&self) -> i32 {
        if self.line == 0 {
            -1
        } else {
            self.line as i32
        }
    }
}

impl fmt::Display for SrcLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// The name under which an instruction result appears in the trace.
///
/// LLVM numbers unnamed temporaries sequentially per function (`%8`, `%9`,
/// ...) while `alloca`s of source variables keep the variable name (`%sum`).
/// AutoCheck's reg-var and reg-reg maps are keyed by exactly these names, so
/// we reproduce the split.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RegName {
    /// Numbered temporary register.
    Temp(u32),
    /// A named register — the symbolic name of a source variable.
    Var(String),
    /// The instruction produces no value (e.g. `Store`, `Br`).
    None,
}

impl RegName {
    /// The textual form used in trace records (empty for `None`).
    pub fn as_trace_str(&self) -> String {
        match self {
            RegName::Temp(n) => n.to_string(),
            RegName::Var(s) => s.clone(),
            RegName::None => String::new(),
        }
    }
}

impl fmt::Display for RegName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegName::Temp(n) => write!(f, "%{n}"),
            RegName::Var(s) => write!(f, "%{s}"),
            RegName::None => write!(f, "%_"),
        }
    }
}

/// Binary arithmetic operators (paper Table I's "arithmetic instructions").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    FAdd,
    Sub,
    FSub,
    Mul,
    FMul,
    UDiv,
    SDiv,
    FDiv,
    URem,
    SRem,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
}

impl BinOp {
    /// True for the floating-point variants.
    pub fn is_float(&self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }

    /// Mnemonic as printed in the textual IR.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::FAdd => "fadd",
            BinOp::Sub => "sub",
            BinOp::FSub => "fsub",
            BinOp::Mul => "mul",
            BinOp::FMul => "fmul",
            BinOp::UDiv => "udiv",
            BinOp::SDiv => "sdiv",
            BinOp::FDiv => "fdiv",
            BinOp::URem => "urem",
            BinOp::SRem => "srem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
        }
    }
}

/// Comparison predicates (both integer and float comparisons).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpPred {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpPred {
    /// Mnemonic as printed in the textual IR.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Lt => "lt",
            CmpPred::Le => "le",
            CmpPred::Gt => "gt",
            CmpPred::Ge => "ge",
        }
    }
}

/// Value conversions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CastOp {
    /// Signed integer to double (`sitofp`, opcode 39).
    SiToFp,
    /// Double to signed integer, truncating (`fptosi`, opcode 37).
    FpToSi,
    /// `i1` to `i64` zero extension (`zext`, opcode 34).
    ZExt,
}

/// Built-in functions.
///
/// Builtins are traced as *single `Call` instructions* without a following
/// function body — exactly the paper's "Call form 1" (Fig. 6(a), which shows
/// a call to libm `pow`). This gives the analysis realistic coverage of both
/// call forms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// Print a scalar value to the program's output stream.
    Print,
    /// `sqrt(f64) -> f64`.
    Sqrt,
    /// `pow(f64, f64) -> f64`.
    Pow,
    /// `fabs(f64) -> f64`.
    FAbs,
    /// `abs(i64) -> i64`.
    IAbs,
    /// `exp(f64) -> f64`.
    Exp,
    /// `log(f64) -> f64`.
    Log,
    /// `cos(f64) -> f64`.
    Cos,
    /// `sin(f64) -> f64`.
    Sin,
    /// `floor(f64) -> f64`.
    Floor,
    /// `fmax(f64, f64) -> f64`.
    FMax,
    /// `fmin(f64, f64) -> f64`.
    FMin,
}

impl Builtin {
    /// The symbol name as it appears in traces.
    pub fn name(&self) -> &'static str {
        match self {
            Builtin::Print => "print",
            Builtin::Sqrt => "sqrt",
            Builtin::Pow => "pow",
            Builtin::FAbs => "fabs",
            Builtin::IAbs => "abs",
            Builtin::Exp => "exp",
            Builtin::Log => "log",
            Builtin::Cos => "cos",
            Builtin::Sin => "sin",
            Builtin::Floor => "floor",
            Builtin::FMax => "fmax",
            Builtin::FMin => "fmin",
        }
    }

    /// Parameter types.
    pub fn param_types(&self) -> &'static [Type] {
        use Type::*;
        match self {
            Builtin::Print => &[],
            Builtin::Sqrt
            | Builtin::FAbs
            | Builtin::Exp
            | Builtin::Log
            | Builtin::Cos
            | Builtin::Sin
            | Builtin::Floor => const { &[F64] },
            Builtin::Pow | Builtin::FMax | Builtin::FMin => const { &[F64, F64] },
            Builtin::IAbs => const { &[I64] },
        }
    }

    /// Return type.
    pub fn ret_type(&self) -> Type {
        match self {
            Builtin::Print => Type::Void,
            Builtin::IAbs => Type::I64,
            _ => Type::F64,
        }
    }

    /// Look a builtin up by its source-level name.
    pub fn by_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "print" => Builtin::Print,
            "sqrt" => Builtin::Sqrt,
            "pow" => Builtin::Pow,
            "fabs" => Builtin::FAbs,
            "abs" => Builtin::IAbs,
            "exp" => Builtin::Exp,
            "log" => Builtin::Log,
            "cos" => Builtin::Cos,
            "sin" => Builtin::Sin,
            "floor" => Builtin::Floor,
            "fmax" => Builtin::FMax,
            "fmin" => Builtin::FMin,
            _ => return None,
        })
    }
}

/// The target of a call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Callee {
    /// A function defined in the module: traced as "Call form 2" — the call
    /// block is followed by the callee's body in the dynamic trace.
    Function(FuncId),
    /// A builtin: traced as "Call form 1" — a lone call block.
    Builtin(Builtin),
}

/// Instruction payloads.
#[derive(Clone, Debug, PartialEq)]
pub enum InstKind {
    /// Stack allocation of a named source variable (opcode 26).
    Alloca {
        /// Type of the allocated storage (scalar or array).
        ty: Type,
        /// Source-level variable name.
        var: String,
    },
    /// Read a scalar through a pointer (opcode 27).
    Load {
        /// Pointer operand.
        ptr: Value,
        /// Loaded value type.
        ty: Type,
    },
    /// Write a scalar through a pointer (opcode 28).
    Store {
        /// The value stored.
        value: Value,
        /// Pointer operand.
        ptr: Value,
        /// Stored value type.
        ty: Type,
    },
    /// Compute the address of `base[index]` (opcode 29). Single-index form;
    /// multi-dimensional arrays are linearised by the frontend.
    Gep {
        /// Base pointer (alloca, global, or pointer parameter).
        base: Value,
        /// Element index.
        index: Value,
        /// Element type, determining the address scale.
        elem: Type,
    },
    /// Reinterpret a pointer (opcode 44). Exists because `BitCast` is one of
    /// the pointer-provenance instructions AutoCheck must chase (Table I).
    BitCast {
        /// Source pointer.
        value: Value,
        /// Result type.
        to: Type,
    },
    /// Binary arithmetic (opcodes 8–25).
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// Integer or float comparison producing an `i1` (opcodes 46/47).
    Cmp {
        /// Predicate.
        pred: CmpPred,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
        /// True when the operands are floats (`FCmp`).
        float: bool,
    },
    /// Value conversion (opcodes 34/37/39).
    Cast {
        /// Conversion kind.
        op: CastOp,
        /// Converted value.
        value: Value,
    },
    /// Function or builtin call (opcode 49).
    Call {
        /// Call target.
        callee: Callee,
        /// Actual arguments.
        args: Vec<Value>,
    },
    /// Return from the enclosing function (opcode 1).
    Ret {
        /// Returned value, if the function is non-void.
        value: Option<Value>,
    },
    /// Unconditional branch (opcode 2).
    Br {
        /// Branch target.
        target: BlockId,
    },
    /// Conditional branch (opcode 2).
    CondBr {
        /// `i1` condition.
        cond: Value,
        /// Target when true.
        then_bb: BlockId,
        /// Target when false.
        else_bb: BlockId,
    },
}

/// LLVM 3.4 instruction opcode numbers, as they appear in the trace
/// (`Load` = 27 etc.; see paper Figs. 1 and 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Opcode(pub u16);

impl Opcode {
    pub const RET: Opcode = Opcode(1);
    pub const BR: Opcode = Opcode(2);
    pub const ADD: Opcode = Opcode(8);
    pub const FADD: Opcode = Opcode(9);
    pub const SUB: Opcode = Opcode(10);
    pub const FSUB: Opcode = Opcode(11);
    pub const MUL: Opcode = Opcode(12);
    pub const FMUL: Opcode = Opcode(13);
    pub const UDIV: Opcode = Opcode(14);
    pub const SDIV: Opcode = Opcode(15);
    pub const FDIV: Opcode = Opcode(16);
    pub const UREM: Opcode = Opcode(17);
    pub const SREM: Opcode = Opcode(18);
    pub const SHL: Opcode = Opcode(20);
    pub const LSHR: Opcode = Opcode(21);
    pub const ASHR: Opcode = Opcode(22);
    pub const AND: Opcode = Opcode(23);
    pub const OR: Opcode = Opcode(24);
    pub const XOR: Opcode = Opcode(25);
    pub const ALLOCA: Opcode = Opcode(26);
    pub const LOAD: Opcode = Opcode(27);
    pub const STORE: Opcode = Opcode(28);
    pub const GETELEMENTPTR: Opcode = Opcode(29);
    pub const ZEXT: Opcode = Opcode(34);
    pub const FPTOSI: Opcode = Opcode(37);
    pub const SITOFP: Opcode = Opcode(39);
    pub const BITCAST: Opcode = Opcode(44);
    pub const ICMP: Opcode = Opcode(46);
    pub const FCMP: Opcode = Opcode(47);
    pub const PHI: Opcode = Opcode(48);
    pub const CALL: Opcode = Opcode(49);

    /// True for the arithmetic family the paper's reg-reg map tracks
    /// (`Add`, `FAdd`, `Sub`, `FSub`, `Mul`, `FMul`, `UDiv`, `SDiv`, `FDiv`;
    /// Table I). We additionally include the remainder/bitwise group, which
    /// LLVM also classifies as binary operators.
    pub fn is_arithmetic(&self) -> bool {
        (Opcode::ADD.0..=Opcode::XOR.0).contains(&self.0)
    }

    /// The human-readable operation name (`"Load"`, `"Mul"`, ...).
    pub fn name(&self) -> &'static str {
        match *self {
            Opcode::RET => "Ret",
            Opcode::BR => "Br",
            Opcode::ADD => "Add",
            Opcode::FADD => "FAdd",
            Opcode::SUB => "Sub",
            Opcode::FSUB => "FSub",
            Opcode::MUL => "Mul",
            Opcode::FMUL => "FMul",
            Opcode::UDIV => "UDiv",
            Opcode::SDIV => "SDiv",
            Opcode::FDIV => "FDiv",
            Opcode::UREM => "URem",
            Opcode::SREM => "SRem",
            Opcode::SHL => "Shl",
            Opcode::LSHR => "LShr",
            Opcode::ASHR => "AShr",
            Opcode::AND => "And",
            Opcode::OR => "Or",
            Opcode::XOR => "Xor",
            Opcode::ALLOCA => "Alloca",
            Opcode::LOAD => "Load",
            Opcode::STORE => "Store",
            Opcode::GETELEMENTPTR => "GetElementPtr",
            Opcode::ZEXT => "ZExt",
            Opcode::FPTOSI => "FPToSI",
            Opcode::SITOFP => "SIToFP",
            Opcode::BITCAST => "BitCast",
            Opcode::ICMP => "ICmp",
            Opcode::FCMP => "FCmp",
            Opcode::PHI => "PHI",
            Opcode::CALL => "Call",
            _ => "Unknown",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl BinOp {
    /// The LLVM 3.4 opcode number of this operator.
    pub fn opcode(&self) -> Opcode {
        match self {
            BinOp::Add => Opcode::ADD,
            BinOp::FAdd => Opcode::FADD,
            BinOp::Sub => Opcode::SUB,
            BinOp::FSub => Opcode::FSUB,
            BinOp::Mul => Opcode::MUL,
            BinOp::FMul => Opcode::FMUL,
            BinOp::UDiv => Opcode::UDIV,
            BinOp::SDiv => Opcode::SDIV,
            BinOp::FDiv => Opcode::FDIV,
            BinOp::URem => Opcode::UREM,
            BinOp::SRem => Opcode::SREM,
            BinOp::And => Opcode::AND,
            BinOp::Or => Opcode::OR,
            BinOp::Xor => Opcode::XOR,
            BinOp::Shl => Opcode::SHL,
            BinOp::LShr => Opcode::LSHR,
            BinOp::AShr => Opcode::ASHR,
        }
    }
}

/// One instruction: payload plus the metadata every trace record needs.
#[derive(Clone, Debug, PartialEq)]
pub struct Inst {
    /// The operation.
    pub kind: InstKind,
    /// Source location of the originating statement.
    pub loc: SrcLoc,
    /// The result register name (`Temp`/`Var`/`None`).
    pub name: RegName,
}

impl Inst {
    /// The LLVM-3.4 opcode of this instruction.
    pub fn opcode(&self) -> Opcode {
        match &self.kind {
            InstKind::Alloca { .. } => Opcode::ALLOCA,
            InstKind::Load { .. } => Opcode::LOAD,
            InstKind::Store { .. } => Opcode::STORE,
            InstKind::Gep { .. } => Opcode::GETELEMENTPTR,
            InstKind::BitCast { .. } => Opcode::BITCAST,
            InstKind::Binary { op, .. } => op.opcode(),
            InstKind::Cmp { float, .. } => {
                if *float {
                    Opcode::FCMP
                } else {
                    Opcode::ICMP
                }
            }
            InstKind::Cast { op, .. } => match op {
                CastOp::SiToFp => Opcode::SITOFP,
                CastOp::FpToSi => Opcode::FPTOSI,
                CastOp::ZExt => Opcode::ZEXT,
            },
            InstKind::Call { .. } => Opcode::CALL,
            InstKind::Ret { .. } => Opcode::RET,
            InstKind::Br { .. } | InstKind::CondBr { .. } => Opcode::BR,
        }
    }

    /// True for block terminators.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self.kind,
            InstKind::Ret { .. } | InstKind::Br { .. } | InstKind::CondBr { .. }
        )
    }

    /// All value operands, in operand order.
    pub fn operands(&self) -> Vec<Value> {
        match &self.kind {
            InstKind::Alloca { .. } => vec![],
            InstKind::Load { ptr, .. } => vec![*ptr],
            InstKind::Store { value, ptr, .. } => vec![*value, *ptr],
            InstKind::Gep { base, index, .. } => vec![*base, *index],
            InstKind::BitCast { value, .. } => vec![*value],
            InstKind::Binary { lhs, rhs, .. } => vec![*lhs, *rhs],
            InstKind::Cmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            InstKind::Cast { value, .. } => vec![*value],
            InstKind::Call { args, .. } => args.clone(),
            InstKind::Ret { value } => value.iter().copied().collect(),
            InstKind::Br { .. } => vec![],
            InstKind::CondBr { cond, .. } => vec![*cond],
        }
    }

    /// True when this instruction produces an SSA value.
    pub fn has_result(&self) -> bool {
        match &self.kind {
            InstKind::Store { .. }
            | InstKind::Ret { .. }
            | InstKind::Br { .. }
            | InstKind::CondBr { .. } => false,
            InstKind::Call { callee, .. } => match callee {
                Callee::Builtin(b) => b.ret_type() != Type::Void,
                Callee::Function(_) => true, // non-void enforced by the verifier
            },
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_numbers_match_llvm_3_4() {
        // These constants are what the paper's figures show: Load=27 (Fig 1),
        // Alloca=26 (Fig 6c), Call=49 (Fig 6a/b).
        assert_eq!(Opcode::LOAD.0, 27);
        assert_eq!(Opcode::ALLOCA.0, 26);
        assert_eq!(Opcode::CALL.0, 49);
        assert_eq!(Opcode::STORE.0, 28);
        assert_eq!(Opcode::GETELEMENTPTR.0, 29);
        assert_eq!(Opcode::BITCAST.0, 44);
        assert_eq!(Opcode::MUL.0, 12);
        assert_eq!(Opcode::FDIV.0, 16);
    }

    #[test]
    fn arithmetic_family() {
        assert!(Opcode::ADD.is_arithmetic());
        assert!(Opcode::FDIV.is_arithmetic());
        assert!(Opcode::XOR.is_arithmetic());
        assert!(!Opcode::LOAD.is_arithmetic());
        assert!(!Opcode::CALL.is_arithmetic());
        assert!(!Opcode::BR.is_arithmetic());
    }

    #[test]
    fn binop_to_opcode() {
        assert_eq!(BinOp::Mul.opcode(), Opcode::MUL);
        assert_eq!(BinOp::FAdd.opcode(), Opcode::FADD);
        assert!(BinOp::FMul.is_float());
        assert!(!BinOp::Mul.is_float());
    }

    #[test]
    fn inst_classification() {
        let store = Inst {
            kind: InstKind::Store {
                value: Value::ConstI(1),
                ptr: Value::Param(0),
                ty: Type::I64,
            },
            loc: SrcLoc::new(3, 1),
            name: RegName::None,
        };
        assert_eq!(store.opcode(), Opcode::STORE);
        assert!(!store.has_result());
        assert!(!store.is_terminator());
        assert_eq!(store.operands().len(), 2);

        let ret = Inst {
            kind: InstKind::Ret { value: None },
            loc: SrcLoc::synthetic(),
            name: RegName::None,
        };
        assert!(ret.is_terminator());
        assert_eq!(ret.loc.trace_line(), -1);
    }

    #[test]
    fn builtin_lookup() {
        assert_eq!(Builtin::by_name("pow"), Some(Builtin::Pow));
        assert_eq!(Builtin::by_name("nope"), None);
        assert_eq!(Builtin::Pow.param_types().len(), 2);
        assert_eq!(Builtin::Print.ret_type(), Type::Void);
    }

    #[test]
    fn regname_trace_strings() {
        assert_eq!(RegName::Temp(8).as_trace_str(), "8");
        assert_eq!(RegName::Var("sum".into()).as_trace_str(), "sum");
        assert_eq!(RegName::None.as_trace_str(), "");
    }
}
