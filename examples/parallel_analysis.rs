//! The paper's §V-A trace-analysis optimization: parallel trace parsing.
//!
//! Generates a larger trace (HPCCG scaled up), then runs the AutoCheck
//! pipeline with 1, 2, 4 and 8 parser threads, printing the Table III-style
//! timing breakdown (pre-processing / dependency analysis / identification)
//! and verifying that parallelism never changes the result.
//!
//! Run with: `cargo run --release --example parallel_analysis`

use autocheck_apps::hpccg;
use autocheck_core::{index_variables_of, Analyzer, PipelineConfig};
use autocheck_interp::{ExecOptions, Machine, NoHook, WriterSink};

fn main() {
    println!("=== Parallel trace processing (paper §V-A / Table III) ===\n");
    // 16 iterations: enough for a multi-MB trace while keeping the CG
    // residual comfortably above exact zero (a fully converged residual
    // would make `beta = rtrans/oldrtrans` divide by zero — a real hazard
    // of running CG past convergence).
    let spec = hpccg::spec_scaled(128, 16);
    let module = autocheck_minilang::compile(&spec.source).expect("compiles");

    let mut sink = WriterSink::new(Vec::new());
    let mut machine = Machine::new(&module, ExecOptions::default());
    machine.run(&mut sink, &mut NoHook).expect("runs");
    let records = sink.records_written();
    let text = String::from_utf8(sink.finish().expect("trace")).expect("utf8");
    println!(
        "trace: {} records, {:.1} MB text\n",
        records,
        text.len() as f64 / (1024.0 * 1024.0)
    );

    let index = index_variables_of(&module, &spec.region);
    let mut reference = None;
    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>12}",
        "threads", "preprocess", "dependency", "identify", "total"
    );
    for threads in [1usize, 2, 4, 8] {
        let analyzer = Analyzer::new(spec.region.clone())
            .with_index_vars(index.clone())
            .with_config(PipelineConfig {
                parse_threads: threads,
                ..PipelineConfig::default()
            });
        let report = analyzer.analyze_text(&text).expect("parses");
        let t = report.timings;
        println!(
            "{:>8} {:>12.2?} {:>12.2?} {:>12.2?} {:>12.2?}",
            threads,
            t.preprocess,
            t.dependency,
            t.identify,
            t.total()
        );
        match &reference {
            None => reference = Some(report.summary()),
            Some(r) => assert_eq!(
                r,
                &report.summary(),
                "parallel parsing must not change results"
            ),
        }
    }

    println!("\ncritical variables (identical across thread counts):");
    for (name, dep) in reference.expect("at least one run") {
        println!("  {name:<10} {dep:?}");
    }
}
