//! Quickstart: the paper's Figure 4 worked example, end to end.
//!
//! Compiles the example program, traces its execution (LLVM-Tracer style),
//! shows a trace excerpt like the paper's Figure 1, runs AutoCheck, and
//! prints the MLI variables, the contracted DDG, and the critical set with
//! dependency types — reproducing Figures 4, 5 and the §IV-C conclusion
//! ("we should checkpoint variables r, a, sum and it").
//!
//! Run with: `cargo run --example quickstart`

use autocheck_core::{contract_ddg, index_variables_of, Analyzer, DdgAnalysis, NodeKind, Region};
use autocheck_core::{Phases, PipelineConfig};
use autocheck_interp::{ExecOptions, Machine, NoHook, VecSink};
use autocheck_trace::writer;

/// The paper's Fig. 4 example code in MiniLang (same layout: `foo` on top,
/// main loop over `it` at lines 13–21).
const FIG4: &str = "\
void foo(int* p, int* q) {
    for (int i = 0; i < 10; i = i + 1) {
        q[i] = p[i] * 2;
    }
}
int main() {
    int a[10]; int b[10];
    int sum = 0; int s = 0; int r = 1;
    for (int i = 0; i < 10; i = i + 1) {
        a[i] = 0;
        b[i] = 0;
    }
    for (int it = 0; it < 10; it = it + 1) {
        int m;
        s = it + 1;
        a[it] = s * r;
        foo(a, b);
        r = r + 1;
        m = a[it] + b[it];
        sum = m;
    }
    print(sum);
    return 0;
}
";

fn main() {
    println!("=== AutoCheck quickstart: the paper's Fig. 4 example ===\n");

    // 1. Compile (Clang substitute).
    let module = autocheck_minilang::compile(FIG4).expect("example compiles");
    println!(
        "compiled: {} function(s), {} IR instruction(s)",
        module.functions.len(),
        module.inst_count()
    );

    // 2. Execute under the tracer (LLVM-Tracer substitute).
    let mut sink = VecSink::default();
    let mut machine = Machine::new(&module, ExecOptions::default());
    let outcome = machine.run(&mut sink, &mut NoHook).expect("runs");
    println!(
        "traced: {} dynamic instructions, program printed {:?}\n",
        sink.records.len(),
        outcome.output
    );

    // 3. Show a Fig. 1-style excerpt: the Load/Mul pair inside foo.
    println!("--- trace excerpt (Fig. 1 format) ---");
    let mut shown = 0;
    for r in &sink.records {
        if r.func == "foo" && (r.opcode == 27 || r.opcode == 12) {
            let mut s = String::new();
            writer::format_record(r, &mut s);
            print!("{s}");
            shown += 1;
            if shown == 2 {
                break;
            }
        }
    }

    // 4. Analyze: MCLR is lines 13–21 of `main`.
    let region = Region::new("main", 13, 21);
    let index_vars = index_variables_of(&module, &region);
    println!("\nloop pass found index variable(s): {index_vars:?}");

    let analyzer = Analyzer::new(region.clone())
        .with_index_vars(index_vars)
        .with_config(PipelineConfig::default());
    let report = analyzer.analyze(&sink.records);

    println!("\n--- MLI variables (paper: a, b, sum, s, r) ---");
    for m in &report.mli {
        println!("  {:<6} base 0x{:x}, {} bytes", m.name, m.base_addr, m.size);
    }

    // 5. The contracted DDG (Fig. 5(d)).
    let phases = Phases::compute(&sink.records, &region);
    let analysis = DdgAnalysis::run(&sink.records, &phases, &report.mli, true);
    let mli_bases: std::collections::HashSet<u64> =
        report.mli.iter().map(|m| m.base_addr).collect();
    let contracted = contract_ddg(
        &analysis.graph,
        |n| matches!(n, NodeKind::Var { base, .. } if mli_bases.contains(base)),
    );
    println!("\n--- contracted DDG (Fig. 5(d)) as DOT ---");
    print!("{}", contracted.to_dot());

    // 6. The verdict (Fig. 7 taxonomy).
    println!("--- critical variables (paper: r, a, sum, it) ---");
    println!("{report}");
}
