//! The paper's §IV-D case study: CG (NPB).
//!
//! Runs AutoCheck on the CG benchmark (Algorithm 2 of the paper) and walks
//! through the reasoning: `x` is Write-After-Read (read by `r = x` at the
//! top of `conj_grad`, overwritten by `x = z/‖z‖` at the end of the outer
//! iteration); `z, p, q, r` are rewritten before every read; the matrix `a`
//! is read-only; the indexation `it` must be checkpointed.
//!
//! Run with: `cargo run --example cg_case_study`

use autocheck_apps::{analyze_app, cg};
use autocheck_core::{DepType, RwKind};

fn main() {
    println!("=== Case study: CG (paper §IV-D, Algorithm 2) ===\n");
    let spec = cg::spec();
    println!(
        "benchmark: {} — {}\nmain loop: {}:{}..={} ({} MiniLang lines)\n",
        spec.name,
        spec.description,
        spec.region.function,
        spec.region.start_line,
        spec.region.end_line,
        spec.loc()
    );

    let run = analyze_app(&spec);
    println!(
        "trace: {} records, {} bytes; {} loop iterations observed\n",
        run.records.len(),
        run.trace_bytes,
        run.report.iterations
    );

    // The R/W dependency story for x (the paper's key observation).
    let x = run
        .report
        .mli
        .iter()
        .find(|m| m.name == "x")
        .expect("x is MLI");
    println!("--- R/W dependencies on `x` in the first iteration ---");
    let phases = autocheck_core::Phases::compute(&run.records, &spec.region);
    let analysis = autocheck_core::DdgAnalysis::run(&run.records, &phases, &run.report.mli, true);
    let mut reads = 0;
    let mut writes = 0;
    let mut first_kind = None;
    for e in analysis.events.iter().filter(|e| {
        e.base == x.base_addr && e.iter == 0 && e.phase == autocheck_core::Phase::Inside
    }) {
        if first_kind.is_none() {
            first_kind = Some(e.kind);
        }
        match e.kind {
            RwKind::Read => reads += 1,
            RwKind::Write => writes += 1,
        }
    }
    println!(
        "  iteration 0: {} read(s) then {} write(s); first access = {:?}",
        reads, writes, first_kind
    );
    println!("  → x is read (r = x) before being overwritten (x = z/|z|): WAR\n");

    println!("--- verdict ---");
    println!("{}", run.report);

    // Sanity against the paper.
    assert_eq!(
        run.report.summary(),
        vec![
            ("it".to_string(), DepType::Index),
            ("x".to_string(), DepType::War),
        ]
    );
    println!("matches the paper: checkpoint x (WAR) and it (Index); z, p, q, r, a need nothing.");
}
