//! The paper's §VI-B validation experiment on CoMD: detect → protect →
//! kill → restart → compare, plus the false-positive check.
//!
//! Run with: `cargo run --example failure_recovery`

use autocheck_apps::{analyze_app, comd};
use autocheck_checkpoint::validate::{validate_restart, validate_with_dropped};
use autocheck_checkpoint::CrSpec;

fn main() {
    println!("=== Failure injection & restart validation (paper §VI-B) ===\n");
    let spec = comd::spec();
    let run = analyze_app(&spec);

    let detected: Vec<String> = run
        .report
        .critical
        .iter()
        .map(|c| c.name.to_string())
        .collect();
    println!("AutoCheck detected for {}:", spec.name);
    for c in &run.report.critical {
        println!("  {:<12} {:<8} {} bytes", c.name, c.dep, c.size);
    }

    let cr = CrSpec {
        region_fn: spec.region.function.clone(),
        start_line: spec.region.start_line,
        end_line: spec.region.end_line,
        protected: detected.clone(),
    };
    let dir = std::env::temp_dir().join(format!("autocheck-example-cr-{}", std::process::id()));

    // Sufficiency: kill at several points; the restart must reproduce the
    // failure-free output every time.
    println!("\n--- sufficiency: kill mid-loop, restart, compare ---");
    let module = autocheck_minilang::compile(&spec.source).expect("compiles");
    for frac in [0.4, 0.6, 0.8] {
        let out = validate_restart(&module, &cr, &dir, frac).expect("validation runs");
        println!(
            "  kill at {:>3.0}% (dyn inst {:>6}): recovered from step {:?}, output {} ({} checkpoint bytes)",
            frac * 100.0,
            out.failure_dyn_id,
            out.recovered_step,
            if out.matches { "MATCHES" } else { "DIVERGES" },
            out.checkpoint_bytes,
        );
        assert!(out.matches);
    }

    // Necessity: drop each detected variable; the restart must diverge.
    println!("\n--- necessity (false-positive check): drop one variable at a time ---");
    for victim in &detected {
        let out = validate_with_dropped(&module, &cr, victim, &dir, 0.6).expect("runs");
        println!(
            "  without {:<12} restart {}",
            victim,
            if out.matches {
                "still matches (NOT critical?)"
            } else {
                "diverges — variable is genuinely critical"
            }
        );
        assert!(!out.matches, "{victim} should be necessary");
    }

    let _ = std::fs::remove_dir_all(&dir);
    println!("\nAll detected variables are sufficient and necessary — no false positives.");
}
