//! Sharded-analysis parity: splitting one trace into iteration-aligned
//! shards and deterministically merging the per-shard state must be
//! invisible in the output. On the Fig. 4 worked example and all 14
//! benchmark apps, at shard counts {1, 2, 4, 8}:
//!
//! * the batch pipeline's rendered report is byte-identical to serial;
//! * the streaming analyzer's rendered report AND contracted-DDG DOT are
//!   byte-identical to serial;
//! * the engine-level full-DDG DOT is byte-identical to serial (shard
//!   merging preserves first-intern node numbering);
//! * shard counts exceeding the iteration count degrade gracefully to
//!   fewer (or one) shards with identical output.

use autocheck_core::{
    index_variables_of, Analyzer, PipelineConfig, Region, StreamAnalyzer, StreamConfig,
};
use autocheck_interp::{ExecOptions, Machine, NoHook, VecSink};
use autocheck_stream::{run_sharded, EngineConfig, NodeKind};
use autocheck_trace::{AnalysisCtx, Record};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn trace_of(source: &str) -> (autocheck_ir::Module, Vec<Record>) {
    let module = autocheck_minilang::compile(source).expect("compiles");
    let mut sink = VecSink::default();
    Machine::new(&module, ExecOptions::default())
        .run(&mut sink, &mut NoHook)
        .expect("runs");
    (module, sink.records)
}

/// Batch pipeline at each shard count: rendered reports must match the
/// serial bytes exactly.
fn check_batch(name: &str, records: &[Record], region: &Region, index: &[String]) {
    let run = |shards: usize| {
        Analyzer::new(region.clone())
            .with_index_vars(index.to_vec())
            .with_config(PipelineConfig {
                shards,
                ..PipelineConfig::default()
            })
            .analyze(records)
            .to_string()
    };
    let serial = run(1);
    for shards in SHARD_COUNTS {
        assert_eq!(
            serial,
            run(shards),
            "{name}: batch report differs at shards={shards}"
        );
    }
}

/// Streaming analyzer at each shard count: rendered report and contracted
/// DOT must match the serial bytes exactly.
fn check_stream(name: &str, records: &[Record], region: &Region, index: &[String]) {
    let run = |shards: usize| {
        let r = StreamAnalyzer::new(region.clone())
            .with_index_vars(index.to_vec())
            .with_config(StreamConfig {
                contracted_dot: true,
                shards,
                ..StreamConfig::default()
            })
            .run_records(records, None)
            .unwrap_or_else(|e| panic!("{name}: shards={shards}: {e}"));
        (
            r.report.to_string(),
            r.contracted_dot.expect("dot rendered"),
        )
    };
    let (serial_report, serial_dot) = run(1);
    for shards in SHARD_COUNTS {
        let (report, dot) = run(shards);
        assert_eq!(
            serial_report, report,
            "{name}: streaming report differs at shards={shards}"
        );
        assert_eq!(
            serial_dot, dot,
            "{name}: contracted DOT differs at shards={shards}"
        );
    }
}

/// Engine-level full-DDG DOT at each shard count: shard merging re-interns
/// each shard's nodes in shard order, so node numbering — and therefore
/// the DOT bytes — must match the serial fold exactly.
fn check_full_dot(name: &str, records: &[Record], region: &Region) {
    let cfg = EngineConfig::for_region(region.function.clone(), region.start_line, region.end_line);
    let dot_at = |shards: usize| {
        let ctx = AnalysisCtx::current();
        let outcome = run_sharded(&cfg, &ctx, records, None, shards)
            .unwrap_or_else(|e| panic!("{name}: shards={shards}: {e}"));
        let bases: std::collections::HashSet<u64> =
            outcome.mli.iter().map(|m| m.base_addr).collect();
        outcome
            .ddg
            .to_dot(|n: &NodeKind| matches!(n, NodeKind::Var { base, .. } if bases.contains(base)))
    };
    let serial = dot_at(1);
    for shards in SHARD_COUNTS {
        assert_eq!(
            serial,
            dot_at(shards),
            "{name}: full-DDG DOT differs at shards={shards}"
        );
    }
}

#[test]
fn fig4_sharded_is_byte_identical() {
    let src = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/fig4.mc"))
        .expect("examples/fig4.mc exists");
    let (module, records) = trace_of(&src);
    let region = Region::new("main", 16, 24);
    let index = index_variables_of(&module, &region);
    check_batch("fig4", &records, &region, &index);
    check_stream("fig4", &records, &region, &index);
    check_full_dot("fig4", &records, &region);
}

#[test]
fn all_fourteen_apps_sharded_batch_is_byte_identical() {
    let apps = autocheck_apps::all_apps();
    assert_eq!(apps.len(), 14, "the suite has 14 apps");
    for spec in apps {
        let (module, records) = trace_of(&spec.source);
        let index = index_variables_of(&module, &spec.region);
        check_batch(spec.name, &records, &spec.region, &index);
    }
}

#[test]
fn all_fourteen_apps_sharded_streaming_is_byte_identical() {
    for spec in autocheck_apps::all_apps() {
        let (module, records) = trace_of(&spec.source);
        let index = index_variables_of(&module, &spec.region);
        check_stream(spec.name, &records, &spec.region, &index);
    }
}

#[test]
fn all_fourteen_apps_sharded_full_dot_is_byte_identical() {
    for spec in autocheck_apps::all_apps() {
        let (_module, records) = trace_of(&spec.source);
        check_full_dot(spec.name, &records, &spec.region);
    }
}

#[test]
fn shard_count_beyond_iterations_degrades_gracefully() {
    // Far more shards than the trace has iteration boundaries: the planner
    // merges down to however many iteration-aligned cuts exist and the
    // output is still byte-identical — never an error, never a bad split.
    let src = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/fig4.mc"))
        .expect("examples/fig4.mc exists");
    let (module, records) = trace_of(&src);
    let region = Region::new("main", 16, 24);
    let index = index_variables_of(&module, &region);
    let run = |shards: usize| {
        Analyzer::new(region.clone())
            .with_index_vars(index.clone())
            .with_config(PipelineConfig {
                shards,
                ..PipelineConfig::default()
            })
            .analyze(&records)
            .to_string()
    };
    let serial = run(1);
    for shards in [records.len(), records.len() * 2, 10_000] {
        assert_eq!(serial, run(shards), "degenerate shard count {shards}");
    }
}
