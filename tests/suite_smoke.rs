//! Workspace-surface smoke test: the umbrella crate's documented quickstart
//! (src/lib.rs) must keep compiling and running through the re-exported
//! paths alone, and the Fig. 4 example must keep producing the paper's
//! §IV-C critical set. Guards the crate map the README documents.

use autocheck_suite::{
    core::{index_variables_of, Analyzer, DepType, Region},
    interp, minilang,
};

/// The exact program from the umbrella crate's doc-comment quickstart.
#[test]
fn doc_quickstart_runs_through_reexports() {
    let module = minilang::compile("int main() { return 0; }").unwrap();
    let mut sink = interp::VecSink::default();
    interp::Machine::new(&module, interp::ExecOptions::default())
        .run(&mut sink, &mut interp::NoHook)
        .unwrap();
    let region = Region::new("main", 13, 21);
    let report = Analyzer::new(region.clone())
        .with_index_vars(index_variables_of(&module, &region))
        .analyze(&sink.records);
    // A program with no main loop has nothing to checkpoint; the point is
    // that the whole chain runs and renders through the umbrella paths.
    assert!(report.critical.is_empty());
    assert!(!format!("{report}").is_empty());
}

/// Every layer is reachable under its re-exported name.
#[test]
fn all_seven_layers_are_reexported() {
    assert!(autocheck_suite::apps::all_apps().len() >= 14);
    assert_eq!(autocheck_suite::checkpoint::crc::crc64(b""), 0);
    assert_eq!(
        autocheck_suite::trace::TraceSource::from_str("")
            .records()
            .unwrap(),
        vec![]
    );
    assert!(autocheck_suite::ir::verify_module(
        &minilang::compile("int main() { return 0; }").unwrap()
    )
    .is_ok());
}

/// The Fig. 4 worked example (examples/fig4.mc) reports the paper's
/// critical set with the right dependency classes.
#[test]
fn fig4_example_reports_paper_critical_set() {
    let src = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/fig4.mc"))
        .expect("examples/fig4.mc exists");
    let module = minilang::compile(&src).unwrap();
    let mut sink = interp::VecSink::default();
    interp::Machine::new(&module, interp::ExecOptions::default())
        .run(&mut sink, &mut interp::NoHook)
        .unwrap();
    let region = Region::new("main", 16, 24);
    let report = Analyzer::new(region.clone())
        .with_index_vars(index_variables_of(&module, &region))
        .analyze(&sink.records);
    let mut found: Vec<(String, DepType)> = report
        .critical
        .iter()
        .map(|c| (c.name.to_string(), c.dep))
        .collect();
    found.sort();
    assert_eq!(
        found,
        vec![
            ("a".to_string(), DepType::Rapo),
            ("it".to_string(), DepType::Index),
            ("r".to_string(), DepType::War),
            ("sum".to_string(), DepType::Outcome),
        ]
    );
}
