//! Table II reproduction: every benchmark's detected critical variables
//! equal the paper-aligned expected set, and the analysis is deterministic.

use autocheck_apps::{all_apps, analyze_app};

#[test]
fn all_fourteen_benchmarks_match_expected_critical_sets() {
    for spec in all_apps() {
        let run = analyze_app(&spec);
        assert_eq!(
            run.report.summary(),
            spec.expected_summary(),
            "{}: detected set diverges from Table II expectations\n{}",
            spec.name,
            run.report
        );
    }
}

#[test]
fn dependency_type_census_is_war_dominated() {
    // Paper §VI-B: of the 102 variables, WAR dominates (76/95 non-index),
    // with a couple of Outcomes and RAPOs. Our 14 skeletons reproduce the
    // same skew.
    use autocheck_core::DepType;
    let mut war = 0;
    let mut outcome = 0;
    let mut rapo = 0;
    let mut index = 0;
    for spec in all_apps() {
        let run = analyze_app(&spec);
        for c in &run.report.critical {
            match c.dep {
                DepType::War => war += 1,
                DepType::Outcome => outcome += 1,
                DepType::Rapo => rapo += 1,
                DepType::Index => index += 1,
            }
        }
    }
    assert!(
        war > outcome + rapo + index,
        "WAR dominates ({war} vs rest)"
    );
    assert_eq!(outcome, 2, "FT's sum and AMG's final_res_norm");
    assert_eq!(rapo, 2, "IS's key_array and bucket_ptrs");
    assert!(index >= 14, "at least one Index per benchmark");
}

#[test]
fn analysis_is_deterministic_per_app() {
    for spec in all_apps().into_iter().take(4) {
        let a = analyze_app(&spec);
        let b = analyze_app(&spec);
        assert_eq!(a.report.summary(), b.report.summary(), "{}", spec.name);
        assert_eq!(a.records.len(), b.records.len(), "{}", spec.name);
        assert_eq!(a.output, b.output, "{}", spec.name);
    }
}

#[test]
fn scaled_inputs_detect_the_same_variables() {
    // Paper §VII "With different inputs": variables to checkpoint do not
    // change across problem sizes.
    use autocheck_apps::{cg, comd, hpccg, sp};
    let pairs = [
        (cg::spec_scaled(12, 5, 4), cg::spec_scaled(24, 8, 6)),
        (hpccg::spec_scaled(16, 6), hpccg::spec_scaled(48, 12)),
        (sp::spec_scaled(16, 8), sp::spec_scaled(40, 16)),
        (comd::spec_scaled(16, 8), comd::spec_scaled(32, 20)),
    ];
    for (small, large) in pairs {
        let a = analyze_app(&small);
        let b = analyze_app(&large);
        assert_eq!(
            a.report.summary(),
            b.report.summary(),
            "{}: critical set must be input-size invariant",
            small.name
        );
    }
}

#[test]
fn trace_sizes_scale_with_input() {
    use autocheck_apps::hpccg;
    let small = analyze_app(&hpccg::spec_scaled(16, 6));
    let large = analyze_app(&hpccg::spec_scaled(64, 12));
    assert!(large.trace_bytes > small.trace_bytes * 2);
}
