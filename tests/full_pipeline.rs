//! Cross-crate integration: the complete substrate chain on the paper's
//! Figure 4 example — compile → trace → loop pass → AutoCheck — checked
//! against every intermediate result the paper states.

use autocheck_core::{
    contract_ddg, index_variables_of, Analyzer, DdgAnalysis, DepType, NodeKind, Phases,
    PipelineConfig, Region,
};
use autocheck_interp::{ExecOptions, Machine, NoHook, VecSink, WriterSink};

const FIG4: &str = "\
void foo(int* p, int* q) {
    for (int i = 0; i < 10; i = i + 1) {
        q[i] = p[i] * 2;
    }
}
int main() {
    int a[10]; int b[10];
    int sum = 0; int s = 0; int r = 1;
    for (int i = 0; i < 10; i = i + 1) {
        a[i] = 0;
        b[i] = 0;
    }
    for (int it = 0; it < 10; it = it + 1) {
        int m;
        s = it + 1;
        a[it] = s * r;
        foo(a, b);
        r = r + 1;
        m = a[it] + b[it];
        sum = m;
    }
    print(sum);
    return 0;
}
";

fn region() -> Region {
    Region::new("main", 13, 21)
}

fn trace() -> (autocheck_ir::Module, Vec<autocheck_trace::Record>) {
    let module = autocheck_minilang::compile(FIG4).expect("compiles");
    let mut sink = VecSink::default();
    Machine::new(&module, ExecOptions::default())
        .run(&mut sink, &mut NoHook)
        .expect("runs");
    (module, sink.records)
}

#[test]
fn program_output_matches_c_semantics() {
    let module = autocheck_minilang::compile(FIG4).unwrap();
    let out = Machine::new(&module, ExecOptions::default())
        .run(&mut autocheck_interp::NullSink, &mut NoHook)
        .unwrap();
    // it=9: s=10, r=10 at the multiply, a[9]=100, b[9]=200, sum=300.
    assert_eq!(out.output, vec!["300".to_string()]);
}

#[test]
fn mli_set_matches_paper() {
    let (module, records) = trace();
    let report = Analyzer::new(region())
        .with_index_vars(index_variables_of(&module, &region()))
        .analyze(&records);
    let mut names: Vec<_> = report.mli.iter().map(|m| m.name.as_str()).collect();
    names.sort();
    assert_eq!(names, vec!["a", "b", "r", "s", "sum"]);
}

#[test]
fn critical_set_matches_paper_conclusion() {
    let (module, records) = trace();
    let report = Analyzer::new(region())
        .with_index_vars(index_variables_of(&module, &region()))
        .analyze(&records);
    assert_eq!(
        report.summary(),
        vec![
            ("a".to_string(), DepType::Rapo),
            ("it".to_string(), DepType::Index),
            ("r".to_string(), DepType::War),
            ("sum".to_string(), DepType::Outcome),
        ]
    );
}

#[test]
fn contracted_ddg_has_fig5d_edges() {
    let (_module, records) = trace();
    let report = Analyzer::new(region()).analyze(&records);
    let phases = Phases::compute(&records, &region());
    let analysis = DdgAnalysis::run(&records, &phases, &report.mli, true);
    let bases: std::collections::HashSet<u64> = report.mli.iter().map(|m| m.base_addr).collect();
    let c = contract_ddg(
        &analysis.graph,
        |n| matches!(n, NodeKind::Var { base, .. } if bases.contains(base)),
    );
    let edge = |p: &str, ch: &str| {
        let pi = c.find_label(p).unwrap_or_else(|| panic!("node {p}"));
        let ci = c.find_label(ch).unwrap_or_else(|| panic!("node {ch}"));
        c.edges.contains(&(pi, ci))
    };
    // Fig. 5(d): a and b feed sum; s and r feed a; a feeds b (through foo).
    assert!(edge("a", "sum"), "a -> sum");
    assert!(edge("b", "sum"), "b -> sum");
    assert!(edge("s", "a"), "s -> a");
    assert!(edge("r", "a"), "r -> a");
    assert!(edge("a", "b"), "a -> b (through foo's p/q parameters)");
    // Only MLI variables (and terminals) remain: no temporaries.
    assert!(c.nodes.iter().all(|n| n.is_var() || c.nodes.len() < 100));
}

#[test]
fn analysis_is_stable_across_trace_serialization() {
    let (module, records) = trace();
    // Serialize to text and re-analyze through the parallel text path.
    let mut sink = WriterSink::new(Vec::new());
    for r in &records {
        use autocheck_interp::TraceSink as _;
        sink.record(r.clone()).unwrap();
    }
    let text = String::from_utf8(sink.finish().unwrap()).unwrap();
    let analyzer = Analyzer::new(region())
        .with_index_vars(index_variables_of(&module, &region()))
        .with_config(PipelineConfig {
            parse_threads: 4,
            ..PipelineConfig::default()
        });
    let from_text = analyzer.analyze_text(&text).unwrap();
    let direct = Analyzer::new(region())
        .with_index_vars(index_variables_of(&module, &region()))
        .analyze(&records);
    assert_eq!(from_text.summary(), direct.summary());
    assert_eq!(from_text.mli.len(), direct.mli.len());
}

#[test]
fn iteration_count_and_records_reported() {
    let (module, records) = trace();
    let report = Analyzer::new(region())
        .with_index_vars(index_variables_of(&module, &region()))
        .analyze(&records);
    assert_eq!(report.iterations, 10);
    assert_eq!(report.records, records.len() as u64);
    assert!(
        report.checkpoint_bytes() >= 80 + 8 + 8,
        "a + r + sum at least"
    );
}
