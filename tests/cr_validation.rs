//! The paper's §VI-B claims, end to end, for all 14 benchmarks:
//!
//! * **sufficiency** — checkpointing exactly the AutoCheck-detected
//!   variables lets every benchmark restart after a mid-loop kill with
//!   output identical to a failure-free run;
//! * **necessity** — dropping a detected variable breaks the restart (no
//!   false positives), spot-checked on benchmarks whose every critical
//!   variable leaves a footprint in the output.

use autocheck_apps::{all_apps, analyze_app, app_by_name};
use autocheck_checkpoint::validate::{validate_restart, validate_with_dropped};
use autocheck_checkpoint::CrSpec;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("autocheck-crval-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn cr_spec_for(spec: &autocheck_apps::AppSpec, protected: Vec<String>) -> CrSpec {
    CrSpec {
        region_fn: spec.region.function.clone(),
        start_line: spec.region.start_line,
        end_line: spec.region.end_line,
        protected,
    }
}

#[test]
fn all_benchmarks_restart_successfully_with_detected_variables() {
    for spec in all_apps() {
        let run = analyze_app(&spec);
        let detected: Vec<String> = run
            .report
            .critical
            .iter()
            .map(|c| c.name.to_string())
            .collect();
        let module = autocheck_minilang::compile(&spec.source).expect("compiles");
        let dir = tmpdir(spec.name);
        let out = validate_restart(&module, &cr_spec_for(&spec, detected), &dir, 0.6)
            .unwrap_or_else(|e| panic!("{}: validation failed: {e}", spec.name));
        assert!(
            out.matches,
            "{}: restart diverged\n reference: {:?}\n restarted: {:?}",
            spec.name, out.reference, out.restart_output
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn several_failure_points_recover_for_every_benchmark() {
    for spec in [app_by_name("cg").unwrap(), app_by_name("is").unwrap()] {
        let run = analyze_app(&spec);
        let detected: Vec<String> = run
            .report
            .critical
            .iter()
            .map(|c| c.name.to_string())
            .collect();
        let module = autocheck_minilang::compile(&spec.source).unwrap();
        let dir = tmpdir(&format!("{}-sweep", spec.name));
        for frac in [0.35, 0.55, 0.75, 0.92] {
            let out = validate_restart(&module, &cr_spec_for(&spec, detected.clone()), &dir, frac)
                .unwrap();
            assert!(out.matches, "{} at {frac}", spec.name);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn no_false_positives_on_comd_and_hpccg_and_miniamr() {
    for name in ["comd", "hpccg", "miniamr"] {
        let spec = app_by_name(name).unwrap();
        let run = analyze_app(&spec);
        let detected: Vec<String> = run
            .report
            .critical
            .iter()
            .map(|c| c.name.to_string())
            .collect();
        let module = autocheck_minilang::compile(&spec.source).unwrap();
        let dir = tmpdir(&format!("{name}-fp"));
        for victim in &detected {
            // miniAMR's `done` flag and `tmax`/`tmin` extrema are *derived*
            // state in this configuration: each iteration recomputes them
            // from inputs that are themselves checkpointed (or memoryless),
            // so a restart regenerates them and dropping them cannot
            // diverge. AutoCheck checkpoints them conservatively — correct
            // but not strictly necessary here (see EXPERIMENTS.md).
            if name == "miniamr" && ["done", "tmax", "tmin"].contains(&victim.as_str()) {
                continue;
            }
            let out = validate_with_dropped(
                &module,
                &cr_spec_for(&spec, detected.clone()),
                victim,
                &dir,
                0.6,
            )
            .unwrap();
            assert!(
                !out.matches,
                "{name}: dropping `{victim}` still restarted correctly — false positive"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn rapo_arrays_are_necessary_in_is() {
    let spec = app_by_name("is").unwrap();
    let run = analyze_app(&spec);
    let detected: Vec<String> = run
        .report
        .critical
        .iter()
        .map(|c| c.name.to_string())
        .collect();
    let module = autocheck_minilang::compile(&spec.source).unwrap();
    let dir = tmpdir("is-rapo");
    for victim in ["key_array", "bucket_ptrs"] {
        let out = validate_with_dropped(
            &module,
            &cr_spec_for(&spec, detected.clone()),
            victim,
            &dir,
            0.6,
        )
        .unwrap();
        assert!(!out.matches, "dropping RAPO array `{victim}` must diverge");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn blcr_restore_also_recovers_but_costs_more() {
    // The whole-image path works too (BLCR model) — at a much higher
    // storage cost, which Table IV quantifies.
    use autocheck_checkpoint::{BlcrSim, CrDriver, Fti, FtiConfig};
    use autocheck_interp::{ExecOptions, Machine, NoHook, NullSink};

    let spec = app_by_name("sp").unwrap();
    let run = analyze_app(&spec);
    let module = autocheck_minilang::compile(&spec.source).unwrap();
    let reference = Machine::new(&module, ExecOptions::default())
        .run(&mut NullSink, &mut NoHook)
        .unwrap();

    let fti_dir = tmpdir("blcr-fti");
    let img_dir = tmpdir("blcr-img");
    let mut fti = Fti::new(FtiConfig::local(&fti_dir)).unwrap();
    for c in &run.report.critical {
        fti.protect(&c.name);
    }
    let blcr = BlcrSim::new(&img_dir).unwrap();
    let mut driver = CrDriver::new(
        &mut fti,
        &spec.region.function,
        spec.region.start_line,
        spec.region.end_line,
    )
    .unwrap()
    .with_whole_image(blcr);
    let err = Machine::new(
        &module,
        ExecOptions {
            fail_after: Some(reference.steps * 6 / 10),
            ..ExecOptions::default()
        },
    )
    .run(&mut NullSink, &mut driver)
    .unwrap_err();
    assert!(matches!(
        err,
        autocheck_interp::ExecError::Interrupted { .. }
    ));
    let fti_bytes = driver.last_checkpoint_bytes;
    let img_bytes = driver.last_image_bytes;
    assert!(
        img_bytes > fti_bytes,
        "whole image ({img_bytes}) must exceed the detected set ({fti_bytes})"
    );

    // Restore the whole image into a fresh machine at the same sync point
    // and finish the run: output must match (deterministic layout).
    let blcr = driver.into_whole_image().unwrap();
    let step = blcr.latest().unwrap().expect("image written");
    let img = blcr.restore(step).unwrap();
    let mut restored_machine = Machine::new(&module, ExecOptions::default());
    let mut sync = 0u64;
    let start = spec.region.start_line;
    let end = spec.region.end_line;
    let mut armed = false;
    let mut hook = autocheck_interp::hooks::FnHook(
        move |ctx: &mut autocheck_interp::HookCtx<'_>, func: &str, line: u32| {
            if func == "main" && line == start {
                armed = true;
            } else if armed && line > start && line <= end {
                armed = false;
                sync += 1;
                if sync == 1 {
                    ctx.mem.restore_image(&img).expect("image restores");
                }
            }
            autocheck_interp::HookAction::Continue
        },
    );
    let out = restored_machine
        .run(&mut NullSink, &mut hook)
        .expect("restored run completes");
    assert_eq!(out.output, reference.output);
    let _ = std::fs::remove_dir_all(&fti_dir);
    let _ = std::fs::remove_dir_all(&img_dir);
}
