//! Golden DOT snapshots: the unified graph renderer must keep producing
//! byte-identical output to the pre-unification batch implementation.
//!
//! The files under `tests/golden/` were captured from the last revision
//! that still carried two graph implementations (batch `DepGraph` +
//! streaming `StreamGraph`); these tests pin the single `CsrGraph`/
//! `DotWriter` path to those bytes on the Fig. 4 worked example and two
//! benchmark apps — one small (`is`) and the largest (`cg`). The byte
//! parity proptests cover *random* programs but compare refactored code
//! against itself; these snapshots anchor the output to history.

use autocheck_core::{
    contract_ddg, find_mli_vars, index_variables_of, CollectMode, DdgAnalysis, NodeKind, Phases,
    Region, StreamAnalyzer, StreamConfig,
};
use autocheck_interp::{ExecOptions, Machine, NoHook, VecSink};

struct Rendered {
    full: String,
    contracted: String,
    streaming_contracted: String,
    batch_edges: Vec<(String, String)>,
    streaming_edges: Vec<(String, String)>,
}

fn render(source: &str, region: Region, index: Vec<String>) -> Rendered {
    let module = autocheck_minilang::compile(source).expect("compiles");
    let mut sink = VecSink::default();
    Machine::new(&module, ExecOptions::default())
        .run(&mut sink, &mut NoHook)
        .expect("runs");
    let records = sink.records;
    let phases = Phases::compute(&records, &region);
    let mli = find_mli_vars(&records, &phases, &region, CollectMode::AnyAccess);
    let analysis = DdgAnalysis::run(&records, &phases, &mli, true);
    let bases: std::collections::HashSet<u64> = mli.iter().map(|m| m.base_addr).collect();
    let is_mli = |n: &NodeKind| matches!(n, NodeKind::Var { base, .. } if bases.contains(base));
    let contracted = contract_ddg(&analysis.graph, is_mli);
    let batch_edges = labeled_edges(&contracted.nodes, &contracted.edges);

    // The streaming path: same records through the online engine with
    // contraction enabled — a capability the batch-only design could not
    // offer.
    let run = StreamAnalyzer::new(region)
        .with_index_vars(index)
        .with_config(StreamConfig {
            contracted_dot: true,
            ..StreamConfig::default()
        })
        .session_run(&records);
    let streaming_contracted = run.contracted_dot.clone().expect("streaming contraction");
    let streaming_edges = parse_dot_edges(&streaming_contracted);

    Rendered {
        full: analysis.graph.to_dot(is_mli),
        contracted: contracted.to_dot(),
        streaming_contracted,
        batch_edges,
        streaming_edges,
    }
}

/// `(parent label, child label)` pairs, sorted — the order-independent
/// skeleton of a contracted graph.
fn labeled_edges(
    nodes: &[NodeKind],
    edges: &std::collections::BTreeSet<(usize, usize)>,
) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = edges
        .iter()
        .map(|&(p, c)| (nodes[p].label(), nodes[c].label()))
        .collect();
    v.sort();
    v
}

/// Recover the labeled edge set from rendered DOT.
fn parse_dot_edges(dot: &str) -> Vec<(String, String)> {
    let mut labels = std::collections::HashMap::new();
    let mut edges = Vec::new();
    for line in dot.lines() {
        let line = line.trim();
        if let Some((id, rest)) = line
            .strip_prefix('n')
            .and_then(|l| l.split_once(" [label=\""))
        {
            let label = rest.split('"').next().unwrap().to_string();
            labels.insert(format!("n{id}"), label);
        } else if let Some((p, c)) = line.strip_suffix(';').and_then(|l| l.split_once(" -> ")) {
            edges.push((p.to_string(), c.to_string()));
        }
    }
    let mut v: Vec<(String, String)> = edges
        .into_iter()
        .map(|(p, c)| (labels[&p].clone(), labels[&c].clone()))
        .collect();
    v.sort();
    v
}

trait SessionRun {
    fn session_run(&self, records: &[autocheck_trace::Record]) -> autocheck_core::StreamRun;
}

impl SessionRun for StreamAnalyzer {
    fn session_run(&self, records: &[autocheck_trace::Record]) -> autocheck_core::StreamRun {
        let mut session = self.session();
        for r in records {
            session.push(r).expect("no live bound configured");
        }
        session.finish()
    }
}

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing golden {path}: {e}"))
}

/// The batch dependency fold split into iteration-aligned shards and
/// deterministically merged, rendered as (full, contracted) DOT.
fn render_sharded(source: &str, region: &Region, shards: usize) -> (String, String) {
    let module = autocheck_minilang::compile(source).expect("compiles");
    let mut sink = VecSink::default();
    Machine::new(&module, ExecOptions::default())
        .run(&mut sink, &mut NoHook)
        .expect("runs");
    let records = sink.records;
    let ctx = autocheck_trace::AnalysisCtx::current();
    let phases = Phases::compute(&records, region);
    let mli = find_mli_vars(&records, &phases, region, CollectMode::AnyAccess);
    let plan = autocheck_trace::plan_shards(
        records.len(),
        &autocheck_stream::boundaries_from_annots(&phases.annots),
        shards,
    );
    let preload: Vec<_> = mli.iter().map(|m| (m.name, m.base_addr)).collect();
    let (builder, _stats) = autocheck_stream::fold_ddg_sharded(
        &records,
        &phases.annots,
        &plan,
        true,
        true,
        &preload,
        &ctx,
    );
    let graph = builder.finish();
    let bases: std::collections::HashSet<u64> = mli.iter().map(|m| m.base_addr).collect();
    let is_mli = |n: &NodeKind| matches!(n, NodeKind::Var { base, .. } if bases.contains(base));
    let contracted = contract_ddg(&graph, is_mli);
    (graph.to_dot(is_mli), contracted.to_dot())
}

fn check(tag: &str, source: &str, region: Region, index: Vec<String>) {
    let r = render(source, region.clone(), index);
    let golden_full = golden(&format!("{tag}_full.dot"));
    let golden_contracted = golden(&format!("{tag}_contracted.dot"));
    assert_eq!(
        r.full, golden_full,
        "{tag}: full-DDG DOT drifted from the pre-unification bytes"
    );
    assert_eq!(
        r.contracted, golden_contracted,
        "{tag}: contracted-DDG DOT drifted from the pre-unification bytes"
    );
    // The sharded fold is held to the SAME golden bytes: shard merging
    // preserves first-intern node numbering, so even historical snapshots
    // cannot tell the shard counts apart.
    for shards in [2, 4, 8] {
        let (full, contracted) = render_sharded(source, &region, shards);
        assert_eq!(
            full, golden_full,
            "{tag}: sharded full-DDG DOT drifted from golden at shards={shards}"
        );
        assert_eq!(
            contracted, golden_contracted,
            "{tag}: sharded contracted DOT drifted from golden at shards={shards}"
        );
    }
    // Streaming contraction sees the same records without the MLI preload,
    // so node *numbering* may differ — the labeled dependency skeleton must
    // not.
    assert_eq!(
        r.streaming_edges, r.batch_edges,
        "{tag}: streaming contraction disagrees with batch contraction"
    );
    assert!(r.streaming_contracted.starts_with("digraph contracted {"));
}

#[test]
fn fig4_dot_matches_golden() {
    let src = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/fig4.mc"))
        .expect("examples/fig4.mc exists");
    let module = autocheck_minilang::compile(&src).unwrap();
    let region = Region::new("main", 16, 24);
    let index = index_variables_of(&module, &region);
    check("fig4", &src, region, index);
}

#[test]
fn cg_dot_matches_golden() {
    let spec = autocheck_apps::app_by_name("cg").expect("cg exists");
    let module = autocheck_minilang::compile(&spec.source).unwrap();
    let index = index_variables_of(&module, &spec.region);
    check("cg", &spec.source, spec.region.clone(), index);
}

#[test]
fn is_dot_matches_golden() {
    let spec = autocheck_apps::app_by_name("is").expect("is exists");
    let module = autocheck_minilang::compile(&spec.source).unwrap();
    let index = index_variables_of(&module, &spec.region);
    check("is", &spec.source, spec.region.clone(), index);
}
