//! Umbrella crate for the AutoCheck reproduction workspace.
//!
//! Re-exports every layer of the system so downstream users can depend on a
//! single crate:
//!
//! * [`minilang`] — compile C-like benchmark sources to the mini-IR;
//! * [`ir`] — the IR itself plus CFG/dominator/loop analyses;
//! * [`interp`] — execute modules, emit LLVM-Tracer-style dynamic traces,
//!   hook iterations, inject failures;
//! * [`trace`] — the trace format: writer, parser, parallel reader,
//!   bounded streaming reader;
//! * [`stream`] — the online analysis engine: incremental state machines
//!   with O(live window) memory;
//! * [`core`] — AutoCheck: identify the variables to checkpoint, through
//!   the batch `Analyzer` or the streaming `StreamAnalyzer`;
//! * [`checkpoint`] — FTI-style C/R, BLCR-style images, restart validation;
//! * [`apps`] — the paper's 14 evaluation benchmarks.
//!
//! ```
//! use autocheck_suite::{core::{Analyzer, Region, index_variables_of}, interp, minilang};
//!
//! let module = minilang::compile("int main() { return 0; }").unwrap();
//! let mut sink = interp::VecSink::default();
//! interp::Machine::new(&module, interp::ExecOptions::default())
//!     .run(&mut sink, &mut interp::NoHook)
//!     .unwrap();
//! let region = Region::new("main", 13, 21);
//! let report = Analyzer::new(region.clone())
//!     .with_index_vars(index_variables_of(&module, &region))
//!     .analyze(&sink.records);
//! println!("{report}");
//! ```
pub use autocheck_apps as apps;
pub use autocheck_checkpoint as checkpoint;
pub use autocheck_core as core;
pub use autocheck_interp as interp;
pub use autocheck_ir as ir;
pub use autocheck_minilang as minilang;
pub use autocheck_stream as stream;
pub use autocheck_trace as trace;
