//! A vendored, dependency-free subset of the [proptest] API.
//!
//! This workspace builds in environments with no crates.io access, so the
//! real `proptest` cannot be fetched. This crate implements the slice of its
//! surface that the workspace's property tests use — strategies, the
//! `proptest!` / `prop_compose!` / `prop_oneof!` macros, and the
//! `prop_assert*` family — backed by a deterministic splitmix64 generator.
//!
//! Differences from upstream, by design:
//!
//! * **no shrinking** — a failing case reports the generated inputs via the
//!   assertion message but is not minimized;
//! * **deterministic seeding** — each test derives its seed from its own
//!   module path + name (override with `PROPTEST_SEED`), so runs are
//!   reproducible in CI;
//! * **regex strategies** support the subset actually used here: character
//!   classes (`[a-z0-9_]`, ranges and literals), `{m}` / `{m,n}` counted
//!   repetition, and `* + ?`.
//!
//! [proptest]: https://docs.rs/proptest

pub mod collection;
pub mod strategy;

mod rng;

pub use rng::TestRng;
pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};

use std::fmt;

/// Per-test configuration. Only the subset the workspace uses.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A failed property case (carried out of the test body by `prop_assert*`).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn new(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Everything the tests `use proptest::prelude::*` for.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(err) = __outcome {
                    panic!("property failed on case {}/{}: {}", __case + 1, __cfg.cases, err);
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Define a function returning a composite strategy:
/// `prop_compose! { fn name()(x in sx, y in sy) -> T { expr } }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$attr:meta])* $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
        ($($pat:pat in $strat:expr),+ $(,)?)
        -> $ret:ty $body:block) => {
        $(#[$attr])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::strategy::fn_strategy(move |__rng: &mut $crate::TestRng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                $body
            })
        }
    };
}

/// Choose uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __l, __r
            )));
        }
    }};
}

/// `assert_ne!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}
