//! Deterministic test RNG (splitmix64).

/// Deterministic pseudo-random generator used to drive all strategies.
///
/// Seeded from the fully qualified test name (so every property gets an
/// independent, stable stream) unless `PROPTEST_SEED` overrides it.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        // splitmix64 degenerates on a zero state; nudge it.
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seed from the test's qualified name, or `PROPTEST_SEED` when set.
    pub fn for_test(qualified_name: &str) -> Self {
        if let Some(seed) = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            return TestRng::new(seed ^ fnv1a(qualified_name));
        }
        TestRng::new(fnv1a(qualified_name))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // test generation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `bool`.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}
