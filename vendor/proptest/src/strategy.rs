//! Value-generation strategies (the proptest `Strategy` trait, minus
//! shrinking).

use crate::rng::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Generates values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (re-sampling a bounded number of
    /// times; gives up and returns the last sample otherwise).
    fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }

    /// Build recursive structures: `depth` levels of `recurse` stacked over
    /// `self`, each level choosing between the base and the deeper strategy
    /// so generated depths vary.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            let deeper = recurse(level).boxed();
            level = Union::new(vec![base.clone(), deeper]).boxed();
        }
        level
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut last = self.inner.generate(rng);
        for _ in 0..64 {
            if (self.pred)(&last) {
                break;
            }
            last = self.inner.generate(rng);
        }
        last
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// Wrap a generation closure as a strategy (used by `prop_compose!`).
pub fn fn_strategy<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
    FnStrategy(f)
}

/// See [`fn_strategy`].
#[derive(Clone)]
pub struct FnStrategy<F>(F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Values with a canonical "any value of the type" strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// `any::<T>()` — generate arbitrary values of `T`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })+
    };
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.flip()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (b' ' + rng.below(95) as u8) as char
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, roughly log-uniform magnitude; no NaN/inf (tests here
        // round-trip through text formats).
        let mag = rng.below(1 << 40) as f64;
        let scale = 10f64.powi(rng.below(13) as i32 - 6);
        let sign = if rng.flip() { 1.0 } else { -1.0 };
        sign * mag * scale
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )+
    };
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+
    };
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}

/// String literals act as regex strategies (subset: char classes, literal
/// chars, `{m}` / `{m,n}`, `*`, `+`, `?`).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a single (possibly escaped) char.
        let atom: Vec<(char, char)> = if chars[i] == '[' {
            let mut ranges = Vec::new();
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                let lo = if chars[i] == '\\' && i + 1 < chars.len() {
                    i += 1;
                    unescape(chars[i])
                } else {
                    chars[i]
                };
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    ranges.push((lo, chars[i + 2]));
                    i += 3;
                } else {
                    ranges.push((lo, lo));
                    i += 1;
                }
            }
            i += 1; // closing ']'
            ranges
        } else {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                unescape(chars[i])
            } else {
                chars[i]
            };
            i += 1;
            vec![(c, c)]
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..].iter().position(|&c| c == '}').unwrap() + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (lo.trim().parse().unwrap(), hi.trim().parse().unwrap()),
                None => {
                    let n: usize = body.trim().parse().unwrap();
                    (n, n)
                }
            }
        } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
            let q = chars[i];
            i += 1;
            match q {
                '*' => (0, 8),
                '+' => (1, 8),
                _ => (0, 1),
            }
        } else {
            (1, 1)
        };
        let count = min + rng.below((max - min + 1) as u64) as usize;
        let total: u64 = atom.iter().map(|&(lo, hi)| hi as u64 - lo as u64 + 1).sum();
        for _ in 0..count {
            let mut pick = rng.below(total);
            for &(lo, hi) in &atom {
                let span = hi as u64 - lo as u64 + 1;
                if pick < span {
                    out.push(char::from_u32(lo as u32 + pick as u32).unwrap());
                    break;
                }
                pick -= span;
            }
        }
    }
    out
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}
