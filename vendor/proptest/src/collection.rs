//! Collection strategies (`proptest::collection::{vec, btree_set, ...}`).

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

/// A size specification for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// `Vec`s of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `BTreeSet`s of `size` elements drawn from `element`. Duplicate draws are
/// retried a bounded number of times, so a narrow element domain may yield
/// fewer elements than requested (matching proptest's best-effort sizing).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < target * 10 + 16 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// `BTreeMap`s of `size` entries drawn from `key` / `value`.
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let target = self.size.pick(rng);
        let mut map = BTreeMap::new();
        let mut attempts = 0;
        while map.len() < target && attempts < target * 10 + 16 {
            map.insert(self.key.generate(rng), self.value.generate(rng));
            attempts += 1;
        }
        map
    }
}
