//! A vendored, dependency-free subset of the [criterion] benchmarking API.
//!
//! This workspace builds in environments with no crates.io access, so the
//! real `criterion` cannot be fetched. This crate implements the surface the
//! workspace's benches use — `criterion_group!` / `criterion_main!`,
//! benchmark groups, throughput annotation, and `Bencher::iter` — with a
//! simple wall-clock harness: each benchmark runs `sample_size` timed
//! samples after one warm-up and reports min / mean / max per iteration.
//!
//! No statistical analysis, HTML reports, or command-line filtering beyond
//! ignoring the flags Cargo passes to `--bench` targets.
//!
//! **Smoke mode:** setting `AUTOCHECK_BENCH_SMOKE=1` clamps every benchmark
//! to a single timed sample. The numbers are meaningless, but every bench
//! body executes end to end — CI uses this to catch perf-harness rot
//! (benches that compile but panic or hang) without spending minutes on
//! real measurement runs.
//!
//! [criterion]: https://docs.rs/criterion

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` too; upstream
/// deprecated its own copy in favor of this one.
pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// True when `AUTOCHECK_BENCH_SMOKE=1`: run each bench body once, to verify
/// the harness executes, not to measure.
fn smoke_mode() -> bool {
    static SMOKE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *SMOKE.get_or_init(|| std::env::var_os("AUTOCHECK_BENCH_SMOKE").is_some_and(|v| v == "1"))
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Upstream's `Criterion::default().configure_from_args()` step; flags
    /// Cargo forwards (e.g. `--bench`) are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: DEFAULT_SAMPLE_SIZE,
            throughput: None,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(&id.to_string(), DEFAULT_SAMPLE_SIZE, None, f);
        self
    }

    /// Upstream finalization hook; nothing to flush here.
    pub fn final_summary(&mut self) {}
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Input magnitude per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Times the benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut body: impl FnMut() -> O) {
        if !smoke_mode() {
            black_box(body()); // warm-up
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(body());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let sample_size = if smoke_mode() { 1 } else { sample_size };
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {label}: no samples (body never called iter)");
        return;
    }
    let min = *b.samples.iter().min().unwrap();
    let max = *b.samples.iter().max().unwrap();
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            let mibs = n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0);
            format!("  {mibs:.1} MiB/s")
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / mean.as_secs_f64();
            format!("  {eps:.0} elem/s")
        }
        None => String::new(),
    };
    println!(
        "  {label}: [{} {} {}]{rate}",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Bundle benchmark functions into a group runner, mirroring criterion's
/// plain-list form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate the bench `main` (requires `harness = false` on the target).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo forwards flags like `--bench`; this harness ignores them.
            $($group();)+
        }
    };
}
