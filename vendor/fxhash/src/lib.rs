//! A vendored, dependency-free implementation of the FxHash algorithm.
//!
//! This workspace builds in environments with no crates.io access, so the
//! real `fxhash`/`rustc-hash` crates cannot be fetched. This crate
//! implements the same multiply-and-rotate word hasher rustc uses for its
//! own interned-ID tables: every input word is folded into the state with
//!
//! ```text
//! state = (state.rotate_left(5) ^ word) * 0x51_7c_c1_b7_27_22_0a_95
//! ```
//!
//! FxHash is **not** collision-resistant against adversarial inputs; it is
//! meant for trusted, integer-shaped keys (interned symbol ids, node ids,
//! base addresses) where SipHash's per-lookup cost dominates the map
//! operation itself — exactly the shape of the analysis data plane's hot
//! maps.
//!
//! Threat-model note for this workspace: *string* keys from trace files
//! stay on std's seeded SipHash (the interner table and parser memo —
//! see `autocheck_trace::intern`), because crafting string collisions is
//! trivial. The Fx maps key on interner-assigned dense ids and on
//! *addresses/temp numbers* read from the trace; those are
//! attacker-influencable only by hand-crafting a trace, in which case the
//! attacker is degrading their own analysis run — the same self-inflicted
//! class as feeding an enormous trace. A multi-tenant service ingesting
//! third-party traces should revisit this (tracked in ROADMAP.md alongside
//! the interner epoch scheme).
//!
//! Supported surface: [`FxHasher`], [`FxBuildHasher`], and the
//! [`FxHashMap`]/[`FxHashSet`] aliases, drop-in for the upstream crates.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Firefox/rustc implementation: a 64-bit constant with
/// well-mixed bits (derived from pi) that spreads low-entropy integer keys
/// across the hash space in a single multiply.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A `HashMap` using FxHash. Drop-in for `std::collections::HashMap` where
/// keys are trusted and integer-shaped.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using FxHash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// A `HashMap` using seeded FxHash ([`FxSeededState`]) — for maps whose
/// keys come from an untrusted trace (addresses, hand-written temp
/// numbers), where deterministic FxHash would let an adversary craft
/// collision chains. Seed 0 hashes identically to [`FxHashMap`].
pub type FxSeededHashMap<K, V> = HashMap<K, V, FxSeededState>;

/// `BuildHasher` producing [`FxHasher`]s whose initial state is a caller
/// chosen seed, so the key → bucket mapping differs per seed. With seed 0
/// the produced hashers are bit-identical to [`FxBuildHasher`]'s — the
/// trusted/deterministic configuration costs nothing.
///
/// This is *mitigation*, not cryptographic protection: FxHash's mixing is
/// invertible, so a seed only stops precomputed collision sets, which is
/// the realistic threat for trace ingestion (the seed never leaves the
/// analysis session). Keys that an attacker can both choose *and observe
/// hashes of* need SipHash instead (see the interner).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FxSeededState {
    /// The initial hasher state. 0 = deterministic (same as unseeded Fx).
    pub seed: u64,
}

impl FxSeededState {
    /// A build-hasher with the given seed.
    pub fn with_seed(seed: u64) -> FxSeededState {
        FxSeededState { seed }
    }
}

impl std::hash::BuildHasher for FxSeededState {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher { hash: self.seed }
    }
}

/// `BuildHasher` producing [`FxHasher`]s; zero-sized and deterministic (no
/// per-map random seed — FxHash trades DoS resistance for speed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The FxHash streaming hasher.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        // Fold 8 bytes at a time, then the sub-word tail.
        while bytes.len() >= 8 {
            let mut word = [0u8; 8];
            word.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(word));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut word = [0u8; 4];
            word.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u64::from(u32::from_le_bytes(word)));
            bytes = &bytes[4..];
        }
        if bytes.len() >= 2 {
            let mut word = [0u8; 2];
            word.copy_from_slice(&bytes[..2]);
            self.add_to_hash(u64::from(u16::from_le_bytes(word)));
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&(7u32, 0x1000u64)), hash_of(&(7u32, 0x1000u64)));
        assert_eq!(hash_of(&"symbol"), hash_of(&"symbol"));
    }

    #[test]
    fn distinguishes_nearby_integers() {
        // Sequential keys are the dense-ID workload: full hashes must be
        // collision-free and the high bits (the ones hashbrown consumes)
        // must keep a healthy spread even without a finalizer.
        let full: std::collections::HashSet<u64> = (0u64..1000).map(|i| hash_of(&i)).collect();
        assert_eq!(full.len(), 1000, "full-hash collision on sequential keys");
        let high: std::collections::HashSet<u64> =
            (0u64..1000).map(|i| hash_of(&i) >> 48).collect();
        assert!(
            high.len() > 600,
            "high bits collapse: {} distinct of 1000",
            high.len()
        );
    }

    #[test]
    fn byte_stream_tail_sizes_all_fold() {
        // 1..16-byte strings must all hash (exercises every tail branch).
        let mut seen = std::collections::HashSet::new();
        for len in 1..=16 {
            let s: String = "abcdefghijklmnop"[..len].to_string();
            assert!(seen.insert(hash_of(&s.as_str())), "collision at len {len}");
        }
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<(u32, u64), usize> = FxHashMap::default();
        m.insert((1, 0x100), 7);
        assert_eq!(m.get(&(1, 0x100)), Some(&7));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(3));
        assert!(!s.insert(3));
    }

    #[test]
    fn seed_zero_matches_default_and_seeds_differ() {
        for key in [0u64, 1, 0x7f00_0000_0000, u64::MAX] {
            assert_eq!(
                FxSeededState::with_seed(0).hash_one(key),
                FxBuildHasher::default().hash_one(key),
                "seed 0 must be bit-identical to the unseeded hasher"
            );
        }
        // Different seeds scramble the bucket mapping.
        let a: Vec<u64> = (0u64..64)
            .map(|k| FxSeededState::with_seed(0xdead_beef).hash_one(k))
            .collect();
        let b: Vec<u64> = (0u64..64)
            .map(|k| FxSeededState::with_seed(0xfeed_face).hash_one(k))
            .collect();
        assert_ne!(a, b);
        let mut m: FxSeededHashMap<u64, u32> =
            FxSeededHashMap::with_hasher(FxSeededState::with_seed(7));
        m.insert(0x1000, 1);
        assert_eq!(m.get(&0x1000), Some(&1));
    }

    #[test]
    fn matches_reference_vectors() {
        // Reference values computed from the algorithm definition above;
        // pinning them catches accidental constant/rotation changes.
        let mut h = FxHasher::default();
        h.write_u64(1);
        assert_eq!(h.finish(), 1u64.wrapping_mul(super::SEED));
        let mut h2 = FxHasher::default();
        h2.write_u64(1);
        h2.write_u64(2);
        let expect = (1u64.wrapping_mul(super::SEED).rotate_left(5) ^ 2).wrapping_mul(super::SEED);
        assert_eq!(h2.finish(), expect);
    }
}
